package solver

import (
	"math/rand/v2"
	"testing"

	"repro/internal/mat"
	"repro/internal/noise"
	"repro/internal/vec"
)

// randSparse builds a random CSR matrix with a few entries per row.
func randSparse(rng *rand.Rand, r, c int) *mat.Sparse {
	var tri []mat.Triplet
	for i := 0; i < r; i++ {
		for q := 0; q < 3; q++ {
			tri = append(tri, mat.Triplet{Row: i, Col: rng.IntN(c), Val: rng.Float64()*4 - 2})
		}
	}
	return mat.NewSparse(r, c, tri)
}

// extractCol pulls column c out of a rows×k row-major panel.
func extractCol(panel []float64, k, c int) []float64 {
	out := make([]float64, len(panel)/k)
	for i := range out {
		out[i] = panel[i*k+c]
	}
	return out
}

// TestLSMRMultiMatchesScalarBitIdentical is the acceptance pin: on the
// serial Dense and CSR kernels (whose panel accumulation order equals
// the MatVec order), every block-solve column must equal the scalar LSMR
// solve of the same right-hand side to the last bit, even though the
// columns converge at different iterations.
func TestLSMRMultiMatchesScalarBitIdentical(t *testing.T) {
	defer mat.SetParallelism(0)
	mat.SetParallelism(1)
	rng := rand.New(rand.NewPCG(81, 83))
	const k = 5
	cases := map[string]mat.Matrix{
		"dense":  randDense(rng, 41, 17),
		"sparse": randSparse(rng, 60, 23),
	}
	for name, m := range cases {
		rows, cols := m.Dims()
		y := make([]float64, rows*k)
		noise.LaplaceVec(noise.NewRand(91), y, 1)
		// Scale the columns so their convergence points spread out and the
		// per-column latches actually engage at different iterations.
		for i := 0; i < rows; i++ {
			for c := 0; c < k; c++ {
				y[i*k+c] *= float64(c + 1)
			}
		}
		ws := mat.NewWorkspace()
		opts := Options{MaxIter: 400, Tol: 1e-10, Work: ws}
		multi := LSMRMulti(m, y, k, opts)
		if !multi.Converged {
			t.Fatalf("%s: block solve did not converge", name)
		}
		for c := 0; c < k; c++ {
			single := LSMR(m, extractCol(y, k, c), opts)
			for i := 0; i < cols; i++ {
				if got, want := multi.X[i*k+c], single.X[i]; got != want {
					t.Fatalf("%s: column %d diverges at %d: %v vs %v (not bit-identical)",
						name, c, i, got, want)
				}
			}
		}
	}
}

// TestLSMRMultiMatchesScalarAllTypes cross-checks the block solve
// against per-column scalar solves on every structured matrix shape the
// serve and experiments layers feed it (randomized right-hand sides).
// Combinator kernels may reassociate across the panel, so the comparison
// is to solver tolerance rather than bitwise.
func TestLSMRMultiMatchesScalarAllTypes(t *testing.T) {
	rng := rand.New(rand.NewPCG(87, 89))
	cases := map[string]mat.Matrix{
		"tree":      TreeMatrix(128, 2),
		"ranges":    mat.RangeQueries(96, mat.HierarchicalRanges(96, 4)),
		"kron":      mat.Kron(mat.Prefix(8), mat.Prefix(12)),
		"vstack":    mat.VStack(mat.Identity(48), mat.Total(48), mat.Prefix(48)),
		"wavelet":   mat.Wavelet(64),
		"rowscaled": mat.RowScaled(vec.Ones(33), randDense(rng, 33, 15)),
	}
	const k = 4
	for name, m := range cases {
		rows, cols := m.Dims()
		y := make([]float64, rows*k)
		noise.LaplaceVec(noise.NewRand(101), y, 2)
		ws := mat.NewWorkspace()
		opts := Options{MaxIter: 600, Tol: 1e-11, Work: ws}
		multi := LSMRMulti(m, y, k, opts)
		for c := 0; c < k; c++ {
			single := LSMR(m, extractCol(y, k, c), opts)
			got := extractCol(multi.X, k, c)
			if !vec.AllClose(got, single.X, 1e-7, 1e-7) {
				t.Errorf("%s: column %d differs from scalar LSMR: %v vs %v",
					name, c, got[:min(4, cols)], single.X[:min(4, cols)])
			}
		}
	}
}

// TestLSMRMultiZeroAndMixedColumns pins the degenerate cases: a zero
// right-hand side column converges instantly to zero without disturbing
// its neighbors.
func TestLSMRMultiZeroAndMixedColumns(t *testing.T) {
	m := TreeMatrix(64, 2)
	rows, cols := m.Dims()
	const k = 3
	y := make([]float64, rows*k)
	noise.LaplaceVec(noise.NewRand(7), y, 1)
	for i := 0; i < rows; i++ {
		y[i*k+1] = 0 // middle column: zero rhs
	}
	res := LSMRMulti(m, y, k, Options{MaxIter: 300, Tol: 1e-10})
	if !res.Converged {
		t.Fatal("mixed panel did not converge")
	}
	for i := 0; i < cols; i++ {
		if res.X[i*k+1] != 0 {
			t.Fatalf("zero column picked up mass at %d: %v", i, res.X[i*k+1])
		}
	}
	for c := 0; c < k; c += 2 {
		single := LSMR(m, extractCol(y, k, c), Options{MaxIter: 300, Tol: 1e-10})
		if !vec.AllClose(extractCol(res.X, k, c), single.X, 1e-8, 1e-8) {
			t.Fatalf("column %d disturbed by the zero neighbor", c)
		}
	}
}

// TestLSMRMultiIterationLoopAllocFree asserts the acceptance criterion:
// with a warm workspace the block LSMR iteration loop performs zero
// allocations (total allocations per solve must not grow with the
// iteration count).
func TestLSMRMultiIterationLoopAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache under the race detector")
	}
	m := TreeMatrix(1<<10, 2)
	r, _ := m.Dims()
	const k = 8
	rng := noise.NewRand(49)
	y := make([]float64, r*k)
	noise.LaplaceVec(rng, y, 1)
	ws := mat.NewWorkspace()
	solve := func(iters int) float64 {
		return testing.AllocsPerRun(10, func() {
			LSMRMulti(m, y, k, Options{MaxIter: iters, Tol: 0, Work: ws})
		})
	}
	solve(4)
	short := solve(4)
	long := solve(64)
	if long > short {
		t.Errorf("LSMRMulti allocations grow with iterations: %v at 4 iters vs %v at 64", short, long)
	}
}

// TestNNLSMultiMatchesScalarBitIdentical pins each batched NNLS column
// to the scalar FISTA solve on the serial Dense and CSR kernels —
// bitwise, like the LSMR pin, including the weighted path.
func TestNNLSMultiMatchesScalarBitIdentical(t *testing.T) {
	defer mat.SetParallelism(0)
	mat.SetParallelism(1)
	rng := rand.New(rand.NewPCG(93, 95))
	const k = 4
	cases := map[string]mat.Matrix{
		"dense":  randDense(rng, 37, 13),
		"sparse": randSparse(rng, 50, 19),
	}
	for name, m := range cases {
		rows, _ := m.Dims()
		y := make([]float64, rows*k)
		noise.LaplaceVec(noise.NewRand(103), y, 1)
		weights := make([]float64, rows)
		for i := range weights {
			weights[i] = 0.5 + rng.Float64()
		}
		for _, w := range [][]float64{nil, weights} {
			ws := mat.NewWorkspace()
			opts := Options{MaxIter: 250, Tol: 1e-9, Work: ws}
			multi := NNLSMulti(m, y, k, w, opts)
			for c := 0; c < k; c++ {
				single := NNLS(m, extractCol(y, k, c), w, opts)
				got := extractCol(multi.X, k, c)
				for i := range single {
					if got[i] != single[i] {
						t.Fatalf("%s (weights=%v): column %d diverges at %d: %v vs %v",
							name, w != nil, c, i, got[i], single[i])
					}
				}
			}
		}
	}
}

// TestNNLSMultiMatchesScalarAllTypes cross-checks batched NNLS against
// per-column scalar NNLS on structured matrices to solver tolerance, and
// asserts nonnegativity of every column.
func TestNNLSMultiMatchesScalarAllTypes(t *testing.T) {
	cases := map[string]mat.Matrix{
		"tree":   TreeMatrix(64, 2),
		"ranges": mat.RangeQueries(48, mat.HierarchicalRanges(48, 2)),
		"kron":   mat.Kron(mat.Prefix(6), mat.Prefix(8)),
	}
	const k = 3
	for name, m := range cases {
		rows, _ := m.Dims()
		y := make([]float64, rows*k)
		noise.LaplaceVec(noise.NewRand(107), y, 3)
		ws := mat.NewWorkspace()
		opts := Options{MaxIter: 400, Tol: 1e-9, Work: ws}
		multi := NNLSMulti(m, y, k, nil, opts)
		for _, v := range multi.X {
			if v < 0 {
				t.Fatalf("%s: negative entry %v in NNLS solution", name, v)
			}
		}
		for c := 0; c < k; c++ {
			single := NNLS(m, extractCol(y, k, c), nil, opts)
			if !vec.AllClose(extractCol(multi.X, k, c), single, 1e-6, 1e-6) {
				t.Errorf("%s: column %d differs from scalar NNLS", name, c)
			}
		}
	}
}

// TestNNLSMultiIterationLoopAllocFree asserts the batched NNLS iteration
// loop allocates nothing with a warm workspace.
func TestNNLSMultiIterationLoopAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache under the race detector")
	}
	m := TreeMatrix(1<<9, 2)
	r, _ := m.Dims()
	const k = 6
	y := make([]float64, r*k)
	noise.LaplaceVec(noise.NewRand(53), y, 1)
	ws := mat.NewWorkspace()
	solve := func(iters int) float64 {
		return testing.AllocsPerRun(10, func() {
			NNLSMulti(m, y, k, nil, Options{MaxIter: iters, Tol: 0, Work: ws})
		})
	}
	solve(4)
	short := solve(4)
	long := solve(64)
	if long > short {
		t.Errorf("NNLSMulti allocations grow with iterations: %v at 4 iters vs %v at 64", short, long)
	}
}
