package solver

import (
	"math"

	"repro/internal/mat"
	"repro/internal/vec"
)

// This file extends the batched multi-RHS tier (see batch.go) with the
// paper's named solver: LSMRMulti runs k independent Golub-Kahan
// bidiagonalization recurrences in lockstep, so the two matrix
// applications per LSMR iteration become one MatMat and one TMatMat over
// a rows×k panel — one pass over the matrix per iteration for all k
// right-hand sides. NNLSMulti does the same for FISTA projected-gradient
// non-negative least squares, which prices multi-epsilon trial sweeps
// (one strategy, k epsilon columns) at a single panel solve.
//
// Both follow the CGLSMulti contract: each column executes exactly the
// arithmetic of its scalar solve (LSMR / NNLS) on its own right-hand
// side, converged columns freeze under per-column latches while the rest
// keep iterating, and results match the one-at-a-time path to the last
// bit for matrices whose panel kernels accumulate in MatVec order
// (Dense, CSR, and the combinators built from them). With a warm
// Options.Work workspace the iteration loops allocate nothing.

// LSMRMulti solves min ‖A·x_c − y_c‖₂ for the k right-hand sides packed
// in the rows×k row-major panel y with the block LSMR of Fong & Saunders
// run column-wise in lockstep. opts.X0, when non-nil, is a cols×k
// row-major panel warm-starting every column (see the package docs for
// the warm-start contract), and opts.Damp adds per-column Tikhonov
// damping exactly as in LSMR; MaxIter, Tol, TolFloor (length k when
// set) and Work behave as in LSMR, applied per column.
func LSMRMulti(a mat.Matrix, y []float64, k int, opts Options) MultiResult {
	rows, cols := a.Dims()
	if k < 1 {
		panic("solver: LSMRMulti needs k >= 1")
	}
	if len(y) != rows*k {
		panic("solver: LSMRMulti rhs panel length mismatch")
	}
	if len(opts.TolFloor) != 0 && len(opts.TolFloor) != k {
		panic("solver: LSMRMulti TolFloor length mismatch")
	}
	ws := opts.Work
	x := make([]float64, cols*k)
	res := MultiResult{X: x, K: k}

	u := ws.Get(rows * k) // left Lanczos panel; starts as the rhs residual
	copy(u, y)
	if opts.X0 != nil {
		if len(opts.X0) != cols*k {
			panic("solver: LSMRMulti X0 panel length mismatch")
		}
		copy(x, opts.X0)
		panelResidual(a, u, x, k, ws)
	}
	v := ws.Get(cols * k)
	h := ws.Get(cols * k)
	hBar := ws.GetZero(cols * k)
	tmpRow := ws.Get(rows * k)
	tmpCol := ws.Get(cols * k)
	// Per-column scalar state of the rotations and panel coefficients.
	alpha := ws.Get(k)
	beta := ws.Get(k)
	alphaNext := ws.Get(k)
	zetaBar := ws.Get(k)
	alphaBar := ws.Get(k)
	rho := ws.Get(k)
	rhoBar := ws.Get(k)
	cBar := ws.Get(k)
	sBar := ws.Get(k)
	normAr0 := ws.Get(k)
	target := ws.Get(k)
	coefHBar := ws.Get(k)
	step := ws.Get(k)
	coefH := ws.Get(k)
	inv := ws.Get(k)
	sum := ws.Get(k)
	defer func() {
		ws.Put(u)
		ws.Put(v)
		ws.Put(h)
		ws.Put(hBar)
		ws.Put(tmpRow)
		ws.Put(tmpCol)
		ws.Put(alpha)
		ws.Put(beta)
		ws.Put(alphaNext)
		ws.Put(zetaBar)
		ws.Put(alphaBar)
		ws.Put(rho)
		ws.Put(rhoBar)
		ws.Put(cBar)
		ws.Put(sBar)
		ws.Put(normAr0)
		ws.Put(target)
		ws.Put(coefHBar)
		ws.Put(step)
		ws.Put(coefH)
		ws.Put(inv)
		ws.Put(sum)
	}()

	done := make([]bool, k)
	colNorm2(u, k, nil, beta, sum)
	colInvScale(beta, u, k, nil, inv)
	mat.TMatMat(a, v, u, k)
	colNorm2(v, k, nil, alpha, sum)
	colInvScale(alpha, v, k, nil, inv)

	tol := opts.tol()
	active := 0
	for c := 0; c < k; c++ {
		normAr0[c] = alpha[c] * beta[c]
		target[c] = tol * normAr0[c]
		if len(opts.TolFloor) > 0 && opts.TolFloor[c] > target[c] {
			target[c] = opts.TolFloor[c]
		}
		if normAr0[c] == 0 || (len(opts.TolFloor) > 0 && normAr0[c] <= target[c]) {
			// Zero gradient, or the start point already meets the absolute
			// floor: current x_c (zero or X0) stands.
			done[c] = true
			continue
		}
		active++
		// Initialization per Fong & Saunders, Algorithm 1.
		zetaBar[c] = alpha[c] * beta[c]
		alphaBar[c] = alpha[c]
		rho[c] = 1
		rhoBar[c] = 1
		cBar[c] = 1
		sBar[c] = 0
	}
	copy(h, v)

	maxIter := opts.maxIter(cols)
	for it := 1; it <= maxIter && active > 0; it++ {
		lat := latchMask(done, active, k)
		// Continue the bidiagonalization:
		// β_{k+1} u_{k+1} = A v_k − α_k u_k
		mat.MatMat(a, tmpRow, v, k)
		colBidiagStep(u, tmpRow, alpha, lat, k)
		colNorm2(u, k, lat, beta, sum)
		colInvScale(beta, u, k, lat, inv)
		// α_{k+1} v_{k+1} = Aᵀ u_{k+1} − β_{k+1} v_k
		mat.TMatMat(a, tmpCol, u, k)
		colBidiagStep(v, tmpCol, beta, lat, k)
		colNorm2(v, k, lat, alphaNext, sum)
		colInvScale(alphaNext, v, k, lat, inv)
		res.Iterations = it
		for c := 0; c < k; c++ {
			if done[c] {
				continue
			}
			// First plane rotation, eliminating β_{k+1}. Damping enters
			// through α̂ = hypot(ᾱ, λ), the same fold as scalar LSMR; the
			// branch keeps λ = 0 bit-identical to the undamped recurrence.
			alphaHat := alphaBar[c]
			if opts.Damp > 0 {
				alphaHat = math.Hypot(alphaBar[c], opts.Damp)
			}
			rhoOld := rho[c]
			rho[c] = math.Hypot(alphaHat, beta[c])
			cos := alphaHat / rho[c]
			sin := beta[c] / rho[c]
			theta := sin * alphaNext[c]
			alphaBar[c] = cos * alphaNext[c]
			// Second plane rotation.
			rhoBarOld := rhoBar[c]
			thetaBar := sBar[c] * rho[c]
			rhoTemp := cBar[c] * rho[c]
			rhoBar[c] = math.Hypot(cBar[c]*rho[c], theta)
			cBar[c] = rhoTemp / rhoBar[c]
			sBar[c] = theta / rhoBar[c]
			zeta := cBar[c] * zetaBar[c]
			zetaBar[c] = -sBar[c] * zetaBar[c]
			// Column-c coefficients of the h̄ / x / h panel updates below.
			coefHBar[c] = thetaBar * rho[c] / (rhoOld * rhoBarOld)
			step[c] = zeta / (rho[c] * rhoBar[c])
			coefH[c] = theta / rho[c]
			alpha[c] = alphaNext[c]
		}
		colBidiagStep(hBar, h, coefHBar, lat, k) // h̄ = h − coef·h̄
		colAxpyLatch(step, hBar, x, lat, k)      // x += step·h̄
		colBidiagStep(h, v, coefH, lat, k)       // h = v − coef·h
		for c := 0; c < k; c++ {
			if done[c] {
				continue
			}
			if math.Abs(zetaBar[c]) <= target[c] { // estimate of ‖Aᵀr_c‖
				done[c] = true
				active--
			}
		}
	}
	res.Converged = active == 0
	return res
}

// The panel helpers below take done == nil to mean "no column latched
// yet" and run branch-free k-wide inner loops that auto-vectorize — the
// steady state until the first column converges. The branchy paths run
// only after that, and perform the identical arithmetic on the columns
// still active. The solvers pass nil while every column is live (see
// latchMask).

// latchMask returns the done slice to hand the panel helpers: nil while
// every column is still active (selects the branch-free fast paths).
func latchMask(done []bool, active, k int) []bool {
	if active == k {
		return nil
	}
	return done
}

// colInvScale normalizes every non-latched panel column by its norm in
// the exact order the scalar path does: the scalar computes 1/norm once
// and multiplies every element, so the batched path precomputes the
// per-column inverse and multiplies along rows. Zero-norm columns are
// left untouched (multiplying by 1 is exact).
func colInvScale(norm, panel []float64, k int, done []bool, inv []float64) {
	for c := 0; c < k; c++ {
		inv[c] = 1
		if (done == nil || !done[c]) && norm[c] > 0 {
			inv[c] = 1 / norm[c]
		}
	}
	if done == nil {
		for i := 0; i+k <= len(panel); i += k {
			row := panel[i : i+k]
			for c := range row {
				row[c] *= inv[c]
			}
		}
		return
	}
	for i := 0; i+k <= len(panel); i += k {
		row := panel[i : i+k]
		for c := range row {
			if done[c] {
				continue
			}
			row[c] *= inv[c]
		}
	}
}

// colBidiagStep computes dst[i,c] = tmp[i,c] − coef[c]·dst[i,c] over the
// panel, skipping latched columns (the bidiagonalization continuation
// and the LSMR h̄ / h updates share this form).
func colBidiagStep(dst, tmp, coef []float64, done []bool, k int) {
	if done == nil {
		for i := 0; i+k <= len(dst); i += k {
			dr := dst[i : i+k]
			tr := tmp[i : i+k]
			for c, tv := range tr {
				dr[c] = tv - coef[c]*dr[c]
			}
		}
		return
	}
	for i := 0; i+k <= len(dst); i += k {
		dr := dst[i : i+k]
		tr := tmp[i : i+k]
		for c := range dr {
			if done[c] {
				continue
			}
			dr[c] = tr[c] - coef[c]*dr[c]
		}
	}
}

// colAxpyLatch computes y[i,c] += coef[c]·x[i,c], skipping latched
// columns (so frozen solutions stay bit-identical, −0.0 included).
func colAxpyLatch(coef, x, y []float64, done []bool, k int) {
	if done == nil {
		colAxpy(coef, x, y, k)
		return
	}
	for i := 0; i+k <= len(x); i += k {
		xr := x[i : i+k]
		yr := y[i : i+k]
		for c := range xr {
			if done[c] {
				continue
			}
			yr[c] += coef[c] * xr[c]
		}
	}
}

// colNorm2 computes the Euclidean norm of every non-latched panel column
// with exactly vec.Norm2's arithmetic — the max-|·| overflow guard, then
// the scaled sum of squares in row order — so batched columns norm
// bit-identically to extracted ones. out doubles as the max-|·| (and
// divisor) buffer; sum is scratch for the per-column squared sums.
func colNorm2(a []float64, k int, done []bool, out, sum []float64) {
	for c := 0; c < k; c++ {
		if done == nil || !done[c] {
			out[c] = 0
			sum[c] = 0
		}
	}
	if done == nil {
		for i := 0; i+k <= len(a); i += k {
			row := a[i : i+k]
			for c, v := range row {
				if av := math.Abs(v); av > out[c] {
					out[c] = av
				}
			}
		}
		// A zero max means an all-zero column: dividing by 1 keeps the
		// sum at zero and the final product 1·√0 = 0, matching Norm2.
		for c := 0; c < k; c++ {
			if out[c] == 0 {
				out[c] = 1
			}
		}
		for i := 0; i+k <= len(a); i += k {
			row := a[i : i+k]
			for c, v := range row {
				r := v / out[c]
				sum[c] += r * r
			}
		}
		for c := 0; c < k; c++ {
			out[c] *= math.Sqrt(sum[c])
		}
		return
	}
	for i := 0; i+k <= len(a); i += k {
		row := a[i : i+k]
		for c, v := range row {
			if done[c] {
				continue
			}
			if av := math.Abs(v); av > out[c] {
				out[c] = av
			}
		}
	}
	for c := 0; c < k; c++ {
		if done[c] || out[c] == 0 {
			continue
		}
		maxAbs := out[c]
		var s float64
		for i := c; i < len(a); i += k {
			r := a[i] / maxAbs
			s += r * r
		}
		out[c] = maxAbs * math.Sqrt(s)
	}
}

// NNLSMulti solves min_{x_c≥0} ‖A·x_c − y_c‖₂ for the k right-hand
// sides packed in the rows×k row-major panel y by FISTA projected
// gradient with a shared step 1/L (L is a property of A alone), sharing
// each iteration's matrix applications across columns via
// MatMat/TMatMat. Weights, if non-nil, scale each measurement row as in
// NNLS. opts.X0, when non-nil, is a cols×k row-major panel whose
// columns (clamped non-negative, as in NNLS) seed the iteration;
// MaxIter, Tol and Work behave as in NNLS, applied per column with
// per-column convergence latches. opts.Damp is ignored.
func NNLSMulti(a mat.Matrix, y []float64, k int, weights []float64, opts Options) MultiResult {
	ws := opts.Work
	if k < 1 {
		panic("solver: NNLSMulti needs k >= 1")
	}
	if weights != nil {
		a = mat.RowScaled(weights, a)
		wy := ws.Get(len(y))
		for i := 0; i+k <= len(y); i += k {
			w := weights[i/k]
			yr := y[i : i+k]
			wr := wy[i : i+k]
			for c, v := range yr {
				wr[c] = w * v
			}
		}
		defer ws.Put(wy)
		y = wy
	}
	rows, cols := a.Dims()
	if len(y) != rows*k {
		panic("solver: NNLSMulti rhs panel length mismatch")
	}
	x := make([]float64, cols*k)
	res := MultiResult{X: x, K: k}
	if opts.X0 != nil {
		if len(opts.X0) != cols*k {
			panic("solver: NNLSMulti X0 panel length mismatch")
		}
		copy(x, opts.X0)
		vec.ClampNonNeg(x)
	}
	lip := PowerIterLW(a, 30, ws)
	if lip == 0 {
		// Zero operator: return the zero panel exactly as scalar NNLS
		// does, X0 or not.
		for i := range x {
			x[i] = 0
		}
		res.Converged = true
		return res
	}
	step := 1 / lip
	z := ws.GetZero(cols * k) // momentum panel; starts at X (zero or clamped X0)
	copy(z, x)
	xPrev := ws.Get(cols * k)
	grad := ws.Get(cols * k)
	resid := ws.Get(rows * k)
	gradNorm0 := ws.Get(k)
	diff := ws.Get(k)
	defer func() {
		ws.Put(z)
		ws.Put(xPrev)
		ws.Put(grad)
		ws.Put(resid)
		ws.Put(gradNorm0)
		ws.Put(diff)
	}()
	done := make([]bool, k)
	active := k
	t := 1.0
	maxIter := opts.maxIter(cols)
	tol := opts.tol()
	for it := 0; it < maxIter && active > 0; it++ {
		lat := latchMask(done, active, k)
		// grad_c = Aᵀ(A·z_c − y_c)
		mat.MatMat(a, resid, z, k)
		colSub(resid, y, lat, k)
		mat.TMatMat(a, grad, resid, k)
		if it == 0 {
			colNorm2(grad, k, lat, gradNorm0, diff)
			for c := 0; c < k; c++ {
				if gradNorm0[c] == 0 { // zero gradient: current x_c (zero or X0) is optimal
					done[c] = true
					active--
				}
			}
			if active == 0 {
				break
			}
			lat = latchMask(done, active, k)
		}
		// Projected gradient step from the momentum iterate.
		colProjStep(x, xPrev, z, grad, step, lat, k)
		tNext := (1 + math.Sqrt(1+4*t*t)) / 2
		mom := (t - 1) / tNext
		colMomentum(z, x, xPrev, mom, diff, lat, k)
		t = tNext
		res.Iterations = it + 1
		// Converged when the projected step is tiny relative to the
		// initial gradient scale (the scalar NNLS rule, per column).
		for c := 0; c < k; c++ {
			if done[c] {
				continue
			}
			if math.Sqrt(diff[c]) <= tol*step*gradNorm0[c] {
				done[c] = true
				active--
			}
		}
	}
	res.Converged = active == 0
	return res
}

// colSub computes dst[i,c] -= y[i,c] over the panel (the NNLS residual
// step), skipping latched columns.
func colSub(dst, y []float64, done []bool, k int) {
	if done == nil {
		for i := 0; i+k <= len(dst); i += k {
			dr := dst[i : i+k]
			yr := y[i : i+k]
			for c, v := range yr {
				dr[c] -= v
			}
		}
		return
	}
	for i := 0; i+k <= len(dst); i += k {
		dr := dst[i : i+k]
		yr := y[i : i+k]
		for c := range dr {
			if done[c] {
				continue
			}
			dr[c] -= yr[c]
		}
	}
}

// colProjStep saves x into xPrev and takes the clamped gradient step
// x[i,c] = max(0, z[i,c] − step·grad[i,c]), skipping latched columns.
func colProjStep(x, xPrev, z, grad []float64, step float64, done []bool, k int) {
	for i := 0; i+k <= len(x); i += k {
		xr := x[i : i+k]
		pr := xPrev[i : i+k]
		zr := z[i : i+k]
		gr := grad[i : i+k]
		if done == nil {
			for c := range xr {
				pr[c] = xr[c]
				v := zr[c] - step*gr[c]
				if v < 0 {
					v = 0
				}
				xr[c] = v
			}
			continue
		}
		for c := range xr {
			if done[c] {
				continue
			}
			pr[c] = xr[c]
			v := zr[c] - step*gr[c]
			if v < 0 {
				v = 0
			}
			xr[c] = v
		}
	}
}

// colMomentum applies the FISTA momentum update z = x + mom·(x − xPrev)
// and accumulates the per-column squared step into diff, skipping
// latched columns.
func colMomentum(z, x, xPrev []float64, mom float64, diff []float64, done []bool, k int) {
	for c := range diff {
		if done == nil || !done[c] {
			diff[c] = 0
		}
	}
	for i := 0; i+k <= len(z); i += k {
		zr := z[i : i+k]
		xr := x[i : i+k]
		pr := xPrev[i : i+k]
		if done == nil {
			for c := range zr {
				d := xr[c] - pr[c]
				zr[c] = xr[c] + mom*d
				diff[c] += d * d
			}
			continue
		}
		for c := range zr {
			if done[c] {
				continue
			}
			d := xr[c] - pr[c]
			zr[c] = xr[c] + mom*d
			diff[c] += d * d
		}
	}
}
