//go:build race

package solver

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under it (sync.Pool bypasses its cache there).
const raceEnabled = true
