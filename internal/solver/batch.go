package solver

import (
	"math"

	"repro/internal/mat"
)

// This file implements batched multi-right-hand-side solves on top of
// the mat package's MatMat tier. A block solve runs k independent Krylov
// recurrences in lockstep: the two matrix applications per iteration
// become one MatMat and one TMatMat over a rows×k panel (one pass over
// the matrix instead of k), and every vector update becomes a k-wide
// contiguous loop with per-column coefficients, which auto-vectorizes.
// Each column follows exactly the arithmetic of a scalar CGLS solve on
// its own right-hand side — converged columns freeze (zero step) while
// the rest keep iterating — so results match the one-at-a-time path to
// the last bit for matrices whose panel kernels accumulate in MatVec
// order (Dense, CSR, and the combinators built from them).

// MultiResult reports a batched multi-RHS solve. X is the cols×k
// row-major solution panel (column c solves the c-th right-hand side).
type MultiResult struct {
	X          []float64
	K          int
	Iterations int
	Converged  bool // every column converged
}

// CGLSMulti solves min ‖A·x_c − y_c‖₂ for the k right-hand sides packed
// in the rows×k row-major panel y, sharing each iteration's matrix
// applications across columns via MatMat/TMatMat. opts.X0, when
// non-nil, is a cols×k row-major panel warm-starting every column (see
// the package docs for the warm-start contract); MaxIter, Tol, TolFloor
// (length k when set) and Work behave as in CGLS, applied per column.
// opts.Damp is ignored.
func CGLSMulti(a mat.Matrix, y []float64, k int, opts Options) MultiResult {
	rows, cols := a.Dims()
	if k < 1 {
		panic("solver: CGLSMulti needs k >= 1")
	}
	if len(y) != rows*k {
		panic("solver: CGLSMulti rhs panel length mismatch")
	}
	if len(opts.TolFloor) != 0 && len(opts.TolFloor) != k {
		panic("solver: CGLSMulti TolFloor length mismatch")
	}
	ws := opts.Work
	x := make([]float64, cols*k)
	res := MultiResult{X: x, K: k}

	r := ws.Get(rows * k) // residual panel: y - A·X (= y when X starts at zero)
	copy(r, y)
	if opts.X0 != nil {
		if len(opts.X0) != cols*k {
			panic("solver: CGLSMulti X0 panel length mismatch")
		}
		copy(x, opts.X0)
		panelResidual(a, r, x, k, ws)
	}
	s := ws.Get(cols * k) // s = Aᵀ·R
	mat.TMatMat(a, s, r, k)
	p := ws.Get(cols * k)
	copy(p, s)
	q := ws.Get(rows * k)
	gamma := ws.Get(k)
	gammaNew := ws.Get(k)
	qq := ws.Get(k)
	alpha := ws.Get(k)
	beta := ws.Get(k)
	norm0 := ws.Get(k)
	target := ws.Get(k)
	defer func() {
		ws.Put(r)
		ws.Put(s)
		ws.Put(p)
		ws.Put(q)
		ws.Put(gamma)
		ws.Put(gammaNew)
		ws.Put(qq)
		ws.Put(alpha)
		ws.Put(beta)
		ws.Put(norm0)
		ws.Put(target)
	}()

	tol := opts.tol()
	colDots(s, s, k, gamma)
	done := make([]bool, k)
	active := 0
	for c := 0; c < k; c++ {
		norm0[c] = math.Sqrt(gamma[c])
		target[c] = tol * norm0[c]
		if len(opts.TolFloor) > 0 && opts.TolFloor[c] > target[c] {
			target[c] = opts.TolFloor[c]
		}
		if norm0[c] == 0 || (len(opts.TolFloor) > 0 && norm0[c] <= target[c]) {
			// Zero gradient, or the start point already meets the absolute
			// floor: x_c (zero or X0) stands.
			done[c] = true
		} else {
			active++
		}
	}
	maxIter := opts.maxIter(cols)

	for it := 0; it < maxIter && active > 0; it++ {
		mat.MatMat(a, q, p, k)
		colDots(q, q, k, qq)
		for c := 0; c < k; c++ {
			if done[c] || qq[c] == 0 {
				alpha[c] = 0
				if !done[c] {
					done[c] = true
					active--
				}
				continue
			}
			alpha[c] = gamma[c] / qq[c]
		}
		colAxpy(alpha, p, x, k)
		colAxmy(alpha, q, r, k)
		mat.TMatMat(a, s, r, k)
		colDots(s, s, k, gammaNew)
		res.Iterations = it + 1
		for c := 0; c < k; c++ {
			if done[c] {
				beta[c] = 0
				continue
			}
			if math.Sqrt(gammaNew[c]) <= target[c] {
				done[c] = true
				active--
				beta[c] = 0
				continue
			}
			beta[c] = gammaNew[c] / gamma[c]
		}
		colXpby(s, beta, p, k)
		copy(gamma, gammaNew)
	}
	res.Converged = active == 0
	return res
}

// panelResidual subtracts A·X from the rows×k residual panel r (which
// holds y on entry): one MatMat pass, then the same elementwise
// y[i] − ax[i] the scalar solvers compute, so a warm-started column's
// residual is bit-identical to the scalar warm start's.
func panelResidual(a mat.Matrix, r, x []float64, k int, ws *mat.Workspace) {
	rows, _ := a.Dims()
	ax := ws.Get(rows * k)
	mat.MatMat(a, ax, x, k)
	for i, v := range ax {
		r[i] -= v
	}
	ws.Put(ax)
}

// colDots computes per-column dot products of two rows×k panels:
// out[c] = Σᵢ a[i,c]·b[i,c], accumulating in row order (the same order
// vec.Dot uses on an extracted column).
func colDots(a, b []float64, k int, out []float64) {
	for c := 0; c < k; c++ {
		out[c] = 0
	}
	for i := 0; i+k <= len(a); i += k {
		ar := a[i : i+k]
		br := b[i : i+k]
		for c, v := range ar {
			out[c] += v * br[c]
		}
	}
}

// colAxpy computes y[i,c] += coef[c]·x[i,c] over a panel.
func colAxpy(coef, x, y []float64, k int) {
	for i := 0; i+k <= len(x); i += k {
		xr := x[i : i+k]
		yr := y[i : i+k]
		for c, v := range xr {
			yr[c] += coef[c] * v
		}
	}
}

// colAxmy computes y[i,c] -= coef[c]·x[i,c] over a panel.
func colAxmy(coef, x, y []float64, k int) {
	for i := 0; i+k <= len(x); i += k {
		xr := x[i : i+k]
		yr := y[i : i+k]
		for c, v := range xr {
			yr[c] -= coef[c] * v
		}
	}
}

// colXpby computes y[i,c] = x[i,c] + coef[c]·y[i,c] over a panel (the
// CG direction update).
func colXpby(x, coef, y []float64, k int) {
	for i := 0; i+k <= len(x); i += k {
		xr := x[i : i+k]
		yr := y[i : i+k]
		for c, v := range xr {
			yr[c] = v + coef[c]*yr[c]
		}
	}
}

// colNorms2 returns into out the squared L2 norm of each panel column.
func colNorms2(a []float64, k int, out []float64) {
	colDots(a, a, k, out)
}
