package solver

import (
	"fmt"

	"repro/internal/mat"
)

// This file implements the tree-based least-squares inference of Hay et
// al. (paper reference [21]), which the paper's Figure 5 compares against
// the general iterative engine. It is logically equivalent to ordinary
// least squares restricted to measurements forming a complete b-ary
// hierarchy with equal per-node noise, and runs in O(n) time.

// TreeNodes returns the number of nodes of a complete b-ary tree with
// depth levels (levels = k+1 where n = b^k leaves).
func TreeNodes(b, levels int) int {
	total, width := 0, 1
	for l := 0; l < levels; l++ {
		total += width
		width *= b
	}
	return total
}

// TreeMatrix returns the measurement matrix of a complete b-ary hierarchy
// over n = b^k leaves, with rows ordered breadth-first from the root and
// including the unit-length leaf ranges. It is the matrix whose noisy
// answers TreeLS consumes.
func TreeMatrix(n, b int) *mat.RangeQueriesMat {
	k := treeDepth(n, b)
	var ranges []mat.Range1D
	width := 1
	for l := 0; l <= k; l++ {
		size := n / width
		for j := 0; j < width; j++ {
			ranges = append(ranges, mat.Range1D{Lo: j * size, Hi: (j+1)*size - 1})
		}
		width *= b
	}
	return mat.RangeQueries(n, ranges)
}

func treeDepth(n, b int) int {
	if n < 1 || b < 2 {
		panic(fmt.Sprintf("solver: tree with n=%d b=%d", n, b))
	}
	k, m := 0, 1
	for m < n {
		m *= b
		k++
	}
	if m != n {
		panic(fmt.Sprintf("solver: tree leaves %d not a power of branching %d", n, b))
	}
	return k
}

// TreeLS runs the two-pass weighted-averaging algorithm of Hay et al. on
// noisy hierarchy answers y (BFS order, as produced by TreeMatrix) and
// returns the consistent leaf estimates. All measurements are assumed to
// carry equal noise.
func TreeLS(n, b int, y []float64) []float64 {
	return TreeLSW(n, b, y, nil)
}

// TreeLSW is TreeLS with an optional workspace supplying the two
// node-array passes, so repeated solves (per-epsilon trials, benchmark
// loops) allocate nothing but the returned leaves. The level bookkeeping
// lives in fixed stack arrays (a b-ary tree over an int domain has at
// most 63 levels).
func TreeLSW(n, b int, y []float64, ws *mat.Workspace) []float64 {
	k := treeDepth(n, b)
	if want := TreeNodes(b, k+1); len(y) != want {
		panic(fmt.Sprintf("solver: TreeLS expects %d measurements, got %d", want, len(y)))
	}
	// Level offsets into the BFS array.
	var offsets [65]int
	width := 1
	for l := 0; l <= k; l++ {
		offsets[l+1] = offsets[l] + width
		width *= b
	}
	idx := func(level, j int) int { return offsets[level] + j }

	// Powers of b up to the tree height.
	var pow [66]float64
	pow[0] = 1
	for i := 1; i <= k+1; i++ {
		pow[i] = pow[i-1] * float64(b)
	}

	// Bottom-up pass: z blends each node's own measurement with its
	// children's aggregated z. A node at level l has height h = k-l+1
	// (leaves h=1).
	z := ws.Get(len(y))
	defer ws.Put(z)
	for l := k; l >= 0; l-- {
		h := k - l + 1
		levelWidth := int(pow[l])
		for j := 0; j < levelWidth; j++ {
			v := idx(l, j)
			if l == k { // leaf
				z[v] = y[v]
				continue
			}
			var childSum float64
			for c := 0; c < b; c++ {
				childSum += z[idx(l+1, j*b+c)]
			}
			num := (pow[h]-pow[h-1])*y[v] + (pow[h-1]-1)*childSum
			z[v] = num / (pow[h] - 1)
		}
	}

	// Top-down pass: push consistency down the tree.
	xbar := ws.Get(len(y))
	defer ws.Put(xbar)
	xbar[0] = z[0]
	for l := 0; l < k; l++ {
		levelWidth := int(pow[l])
		for j := 0; j < levelWidth; j++ {
			u := idx(l, j)
			var childSum float64
			for c := 0; c < b; c++ {
				childSum += z[idx(l+1, j*b+c)]
			}
			adj := (xbar[u] - childSum) / float64(b)
			for c := 0; c < b; c++ {
				v := idx(l+1, j*b+c)
				xbar[v] = z[v] + adj
			}
		}
	}

	leaves := make([]float64, n)
	copy(leaves, xbar[offsets[k]:offsets[k+1]])
	return leaves
}
