package solver

import (
	"fmt"

	"repro/internal/mat"
)

// NormalMulti solves the regularized normal equations
//
//	(G + (ridge + λ²)·I)·X = B
//
// for the k right-hand sides packed in the n×k row-major panel b, given
// a precomputed Gram matrix G (mat.Gram / mat.GramInto output, or an
// incrementally maintained mat.GramUpdate accumulation). It is the
// direct counterpart of the iterative Multi solvers for callers that
// already own the normal-equation state: one dense Cholesky factor
// prices all k columns, and — unlike warm-started Krylov solves — the
// answer depends only on the bits of G and B, so two callers that
// accumulated identical state (for example an incremental rank-k update
// versus a from-scratch rebuild over the same blocks in the same order)
// get bit-identical panels.
//
// ridge is the same tiny stabilizer DirectLS applies
// (1e-12·(1 + max diag G)), so rank-deficient measurement logs factor
// without visibly biasing well-posed systems; damp = λ adds the
// Tikhonov term of Options.Damp on top. g and b are not modified; ws
// supplies the scratch copies. Like DirectLS, it panics if the
// stabilized factorization still fails (G badly non-PSD — corrupted
// state, not a runtime condition). Iterations is reported as 1 (one
// factorization) and Converged is always true.
func NormalMulti(g *mat.Dense, b []float64, k int, damp float64, ws *mat.Workspace) MultiResult {
	n, c := g.Dims()
	if n != c {
		panic(fmt.Sprintf("solver: NormalMulti needs a square Gram matrix, got %dx%d", n, c))
	}
	if k < 1 {
		panic("solver: NormalMulti needs k >= 1")
	}
	if len(b) != n*k {
		panic("solver: NormalMulti rhs panel length mismatch")
	}
	// Factor a stabilized copy so the caller's accumulated G survives.
	buf := ws.Get(n * n)
	copy(buf, g.Data())
	gc := mat.NewDense(n, n, buf)
	ridge := 1e-12*(1+maxDiag(g)) + damp*damp
	for i := 0; i < n; i++ {
		gc.Set(i, i, gc.At(i, i)+ridge)
	}
	l, err := cholesky(gc)
	ws.Put(buf)
	if err != nil {
		panic(fmt.Sprintf("solver: NormalMulti factorization failed: %v", err))
	}

	x := make([]float64, n*k)
	// Forward substitution, k columns in lockstep: L·Z = B.
	z := ws.Get(n * k)
	for i := 0; i < n; i++ {
		li := l.RowView(i)
		zi := z[i*k : (i+1)*k]
		copy(zi, b[i*k:(i+1)*k])
		for j := 0; j < i; j++ {
			lij := li[j]
			if lij == 0 {
				continue
			}
			zj := z[j*k : (j+1)*k]
			for cc, v := range zj {
				zi[cc] -= lij * v
			}
		}
		// Divide (rather than multiply by a reciprocal) so each column
		// runs exactly cholSolve's scalar arithmetic.
		for cc := range zi {
			zi[cc] /= li[i]
		}
	}
	// Back substitution: Lᵀ·X = Z.
	for i := n - 1; i >= 0; i-- {
		xi := x[i*k : (i+1)*k]
		copy(xi, z[i*k:(i+1)*k])
		for j := i + 1; j < n; j++ {
			lji := l.At(j, i)
			if lji == 0 {
				continue
			}
			xj := x[j*k : (j+1)*k]
			for cc, v := range xj {
				xi[cc] -= lji * v
			}
		}
		for cc := range xi {
			xi[cc] /= l.At(i, i)
		}
	}
	ws.Put(z)
	return MultiResult{X: x, K: k, Iterations: 1, Converged: true}
}
