package solver

import (
	"math"

	"repro/internal/mat"
	"repro/internal/vec"
)

// LSMR solves min_x ‖Ax − y‖₂ with the algorithm of Fong & Saunders
// (SIAM J. Sci. Comput. 2011) — the iterative method the paper's §7.6
// uses. Like CGLS it touches A only through MatVec/TMatVec; unlike CGLS
// it is analytically equivalent to MINRES on the normal equations, so
// the estimate ‖Aᵀr_k‖ decreases monotonically, giving a more reliable
// stopping rule on ill-conditioned systems. From x₀ = 0 it converges to
// the minimum-norm least-squares solution.
//
// With opts.Damp = λ > 0 it minimizes ‖Ax − y‖² + λ²·‖x − x₀‖² instead
// (the augmented system [A; λI]): the damping folds into the first
// plane rotation through α̂ = hypot(ᾱ, λ), and the stopping rule then
// tracks the augmented gradient ‖Âᵀr̂‖. The λ = 0 path is untouched and
// stays bit-identical to the undamped algorithm.
func LSMR(a mat.Matrix, y []float64, opts Options) Result {
	rows, cols := a.Dims()
	if len(y) != rows {
		panic("solver: LSMR rhs length mismatch")
	}
	ws := opts.Work
	x := make([]float64, cols)
	res := Result{X: x}

	// b for the bidiagonalization is the residual of the starting point.
	u := ws.Get(rows)
	copy(u, y)
	defer ws.Put(u)
	if opts.X0 != nil {
		copy(x, opts.X0)
		ax := ws.Get(rows)
		a.MatVec(ax, x)
		vec.Axpy(-1, ax, u)
		ws.Put(ax)
	}
	beta := vec.Norm2(u)
	if beta > 0 {
		vec.Scale(1/beta, u)
	}
	v := ws.Get(cols)
	defer ws.Put(v)
	a.TMatVec(v, u)
	alpha := vec.Norm2(v)
	if alpha > 0 {
		vec.Scale(1/alpha, v)
	}
	normAr0 := alpha * beta
	tol := opts.tol()
	target := tol * normAr0
	if len(opts.TolFloor) > 0 && opts.TolFloor[0] > target {
		target = opts.TolFloor[0]
	}
	if normAr0 == 0 || (len(opts.TolFloor) > 0 && normAr0 <= target) {
		// x0 is already optimal, or its gradient already meets the
		// absolute floor.
		res.Converged = true
		return res
	}

	// Initialization per Fong & Saunders, Algorithm 1.
	zetaBar := alpha * beta
	alphaBar := alpha
	rho := 1.0
	rhoBar := 1.0
	cBar := 1.0
	sBar := 0.0
	h := ws.Get(cols)
	copy(h, v)
	hBar := ws.GetZero(cols)

	maxIter := opts.maxIter(cols)
	tmpRow := ws.Get(rows)
	tmpCol := ws.Get(cols)
	defer func() {
		ws.Put(h)
		ws.Put(hBar)
		ws.Put(tmpRow)
		ws.Put(tmpCol)
	}()

	for k := 1; k <= maxIter; k++ {
		// Continue the bidiagonalization:
		// β_{k+1} u_{k+1} = A v_k − α_k u_k
		a.MatVec(tmpRow, v)
		for i := range u {
			u[i] = tmpRow[i] - alpha*u[i]
		}
		beta = vec.Norm2(u)
		if beta > 0 {
			vec.Scale(1/beta, u)
		}
		// α_{k+1} v_{k+1} = Aᵀ u_{k+1} − β_{k+1} v_k
		a.TMatVec(tmpCol, u)
		for i := range v {
			v[i] = tmpCol[i] - beta*v[i]
		}
		alphaNext := vec.Norm2(v)
		if alphaNext > 0 {
			vec.Scale(1/alphaNext, v)
		}

		// First plane rotation, eliminating β_{k+1}. Damping enters here:
		// the extra λ row of the augmented system is rotated into ᾱ first
		// (α̂ = hypot(ᾱ, λ)), and the branch keeps the λ = 0 path
		// bit-identical to the undamped recurrence.
		alphaHat := alphaBar
		if opts.Damp > 0 {
			alphaHat = math.Hypot(alphaBar, opts.Damp)
		}
		rhoOld := rho
		rho = math.Hypot(alphaHat, beta)
		c := alphaHat / rho
		s := beta / rho
		theta := s * alphaNext
		alphaBar = c * alphaNext

		// Second plane rotation.
		rhoBarOld := rhoBar
		thetaBar := sBar * rho
		rhoTemp := cBar * rho
		rhoBar = math.Hypot(cBar*rho, theta)
		cBar = rhoTemp / rhoBar
		sBar = theta / rhoBar
		zeta := cBar * zetaBar
		zetaBar = -sBar * zetaBar

		// Update h̄, x and h.
		coefHBar := thetaBar * rho / (rhoOld * rhoBarOld)
		for i := range hBar {
			hBar[i] = h[i] - coefHBar*hBar[i]
		}
		step := zeta / (rho * rhoBar)
		vec.Axpy(step, hBar, x)
		coefH := theta / rho
		for i := range h {
			h[i] = v[i] - coefH*h[i]
		}

		alpha = alphaNext
		res.Iterations = k
		res.Residual = math.Abs(zetaBar) // estimate of ‖Aᵀr_k‖
		if res.Residual <= target {
			res.Converged = true
			break
		}
	}
	return res
}
