package solver

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// DirectLS solves min_x ‖Ax − y‖₂ by forming the normal equations
// AᵀAx = Aᵀy densely and factoring with Cholesky. This is the "direct"
// baseline of the paper's Figure 5: cubic in the domain size, practical
// only for small n. The Gram matrix is built through mat.Gram's
// structure-aware fast paths (Kronecker factoring, direct CSR), so for
// the paper's strategies the normal-equation assembly is no longer the
// O(cols·matvec) bottleneck.
func DirectLS(a mat.Matrix, y []float64) []float64 {
	return DirectLSW(a, y, nil)
}

// DirectLSW is DirectLS with an optional workspace reused across solves
// for everything except the returned solution.
func DirectLSW(a mat.Matrix, y []float64, ws *mat.Workspace) []float64 {
	_, cols := a.Dims()
	g := mat.Gram(a) // cols × cols dense
	rhs := ws.Get(cols)
	a.TMatVec(rhs, y)
	defer ws.Put(rhs)
	// Tiny ridge for rank-deficient measurement sets keeps the factor
	// stable without visibly biasing well-posed solves.
	ridge := 1e-12 * (1 + maxDiag(g))
	for i := 0; i < cols; i++ {
		g.Set(i, i, g.At(i, i)+ridge)
	}
	l, err := cholesky(g)
	if err != nil {
		panic(fmt.Sprintf("solver: DirectLS factorization failed: %v", err))
	}
	return cholSolve(l, rhs, ws)
}

func maxDiag(g *mat.Dense) float64 {
	n, _ := g.Dims()
	m := 0.0
	for i := 0; i < n; i++ {
		if v := g.At(i, i); v > m {
			m = v
		}
	}
	return m
}

// cholesky factors the symmetric positive-definite matrix g = LLᵀ,
// returning the lower factor.
func cholesky(g *mat.Dense) (*mat.Dense, error) {
	n, c := g.Dims()
	if n != c {
		return nil, fmt.Errorf("cholesky: non-square %dx%d", n, c)
	}
	l := mat.NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := g.At(i, j)
			li := l.RowView(i)
			lj := l.RowView(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("cholesky: non-positive pivot %g at %d", sum, i)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// cholSolve solves LLᵀx = b given the lower Cholesky factor.
func cholSolve(l *mat.Dense, b []float64, ws *mat.Workspace) []float64 {
	n, _ := l.Dims()
	// Forward substitution: L z = b.
	z := ws.Get(n)
	defer ws.Put(z)
	for i := 0; i < n; i++ {
		sum := b[i]
		li := l.RowView(i)
		for k := 0; k < i; k++ {
			sum -= li[k] * z[k]
		}
		z[i] = sum / li[i]
	}
	// Back substitution: Lᵀ x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}
