// Package dataset provides the relational substrate EKTELO computes over:
// a single-relation schema of discrete attributes (paper §3), columnar
// tables, the table transformations of §5.1 (Where, Select,
// SplitByPartition) and the T-Vectorize operation mapping a table to its
// count vector over the attribute-domain product.
package dataset

import (
	"fmt"
	"sort"
)

// Attribute is a discrete attribute with values in [0, Size).
type Attribute struct {
	Name string
	Size int
}

// Schema is an ordered list of attributes.
type Schema []Attribute

// DomainSize returns the product of the attribute domain sizes — the
// length of the vectorized representation (paper §3).
func (s Schema) DomainSize() int {
	n := 1
	for _, a := range s {
		n *= a.Size
	}
	return n
}

// Index returns the position of the named attribute, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Strides returns the row-major stride of each attribute in the
// vectorized domain (the last attribute varies fastest).
func (s Schema) Strides() []int {
	strides := make([]int, len(s))
	n := 1
	for k := len(s) - 1; k >= 0; k-- {
		strides[k] = n
		n *= s[k].Size
	}
	return strides
}

// Sizes returns the per-attribute domain sizes.
func (s Schema) Sizes() []int {
	out := make([]int, len(s))
	for i, a := range s {
		out[i] = a.Size
	}
	return out
}

// Table is a columnar table over a Schema. Cell values are attribute
// value indices in [0, Size).
type Table struct {
	schema Schema
	cols   [][]int
}

// New returns an empty table with the given schema. The schema is copied.
func New(schema Schema) *Table {
	s := make(Schema, len(schema))
	copy(s, schema)
	return &Table{schema: s, cols: make([][]int, len(s))}
}

// Schema returns the table's schema (shared; do not mutate).
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0])
}

// Append adds a row; the number of values must match the schema and each
// value must lie inside its attribute domain.
func (t *Table) Append(row ...int) {
	if len(row) != len(t.schema) {
		panic(fmt.Sprintf("dataset: Append %d values to %d-attribute table", len(row), len(t.schema)))
	}
	for k, v := range row {
		if v < 0 || v >= t.schema[k].Size {
			panic(fmt.Sprintf("dataset: value %d outside domain of %q (size %d)", v, t.schema[k].Name, t.schema[k].Size))
		}
		t.cols[k] = append(t.cols[k], v)
	}
}

// Row returns row i as a fresh slice.
func (t *Table) Row(i int) []int {
	row := make([]int, len(t.cols))
	for k := range t.cols {
		row[k] = t.cols[k][i]
	}
	return row
}

// Column returns the values of the named attribute (shared slice).
func (t *Table) Column(name string) []int {
	k := t.schema.Index(name)
	if k < 0 {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	return t.cols[k]
}

// Condition is an inclusive range condition Attr ∈ [Lo, Hi], the
// declarative condition formula ϕ of paper Definition 3.1 restricted to
// interval predicates (equality is Lo==Hi).
type Condition struct {
	Attr   string
	Lo, Hi int
}

// Predicate is a conjunction of conditions.
type Predicate []Condition

// Eq returns the equality condition Attr == v.
func Eq(attr string, v int) Condition { return Condition{Attr: attr, Lo: v, Hi: v} }

// Between returns the range condition Attr ∈ [lo, hi].
func Between(attr string, lo, hi int) Condition { return Condition{Attr: attr, Lo: lo, Hi: hi} }

// Matches reports whether the predicate holds on row i of t.
func (p Predicate) Matches(t *Table, i int) bool {
	for _, c := range p {
		k := t.schema.Index(c.Attr)
		if k < 0 {
			panic(fmt.Sprintf("dataset: unknown attribute %q in predicate", c.Attr))
		}
		v := t.cols[k][i]
		if v < c.Lo || v > c.Hi {
			return false
		}
	}
	return true
}

// Where returns the sub-table of rows satisfying the predicate
// (1-stable; paper §5.1).
func (t *Table) Where(p Predicate) *Table {
	out := New(t.schema)
	n := t.NumRows()
	for i := 0; i < n; i++ {
		if p.Matches(t, i) {
			for k := range t.cols {
				out.cols[k] = append(out.cols[k], t.cols[k][i])
			}
		}
	}
	return out
}

// Select returns the projection onto the named attributes (1-stable;
// paper §5.1). Duplicates rows are kept (bag semantics).
func (t *Table) Select(names ...string) *Table {
	schema := make(Schema, len(names))
	idx := make([]int, len(names))
	for i, name := range names {
		k := t.schema.Index(name)
		if k < 0 {
			panic(fmt.Sprintf("dataset: Select unknown attribute %q", name))
		}
		schema[i] = t.schema[k]
		idx[i] = k
	}
	out := New(schema)
	for i, k := range idx {
		out.cols[i] = append([]int(nil), t.cols[k]...)
	}
	return out
}

// SplitByPartition partitions the rows by the group assigned to each row
// (groups[i] is the group of rows with attribute value i of the named
// attribute; -1 drops the value). It returns one table per group
// (1-stable; paper §5.1).
func (t *Table) SplitByPartition(attr string, groups []int, numGroups int) []*Table {
	k := t.schema.Index(attr)
	if k < 0 {
		panic(fmt.Sprintf("dataset: SplitByPartition unknown attribute %q", attr))
	}
	if len(groups) != t.schema[k].Size {
		panic("dataset: SplitByPartition group map size mismatch")
	}
	out := make([]*Table, numGroups)
	for g := range out {
		out[g] = New(t.schema)
	}
	n := t.NumRows()
	for i := 0; i < n; i++ {
		g := groups[t.cols[k][i]]
		if g < 0 {
			continue
		}
		for c := range t.cols {
			out[g].cols[c] = append(out[g].cols[c], t.cols[c][i])
		}
	}
	return out
}

// Vectorize returns the count vector x over the schema's full domain
// product: x[idx] is the number of rows whose attribute values encode to
// idx (paper §5.1, T-Vectorize; 1-stable).
func (t *Table) Vectorize() []float64 {
	strides := t.schema.Strides()
	x := make([]float64, t.schema.DomainSize())
	n := t.NumRows()
	for i := 0; i < n; i++ {
		idx := 0
		for k := range t.cols {
			idx += t.cols[k][i] * strides[k]
		}
		x[idx]++
	}
	return x
}

// Histogram returns the 1-D count vector of a single attribute.
func (t *Table) Histogram(attr string) []float64 {
	k := t.schema.Index(attr)
	if k < 0 {
		panic(fmt.Sprintf("dataset: Histogram unknown attribute %q", attr))
	}
	x := make([]float64, t.schema[k].Size)
	for _, v := range t.cols[k] {
		x[v]++
	}
	return x
}

// SortBy sorts the table rows by the named attribute (ascending, stable).
// Useful for deterministic golden tests.
func (t *Table) SortBy(attr string) {
	k := t.schema.Index(attr)
	if k < 0 {
		panic(fmt.Sprintf("dataset: SortBy unknown attribute %q", attr))
	}
	n := t.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return t.cols[k][order[a]] < t.cols[k][order[b]] })
	for c := range t.cols {
		newCol := make([]int, n)
		for i, o := range order {
			newCol[i] = t.cols[c][o]
		}
		t.cols[c] = newCol
	}
}
