package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleTable() *Table {
	t := New(Schema{{Name: "age", Size: 3}, {Name: "sex", Size: 2}})
	t.Append(0, 0)
	t.Append(0, 1)
	t.Append(1, 0)
	t.Append(2, 1)
	t.Append(2, 1)
	return t
}

func TestSchemaDomainAndStrides(t *testing.T) {
	s := Schema{{Name: "a", Size: 4}, {Name: "b", Size: 3}, {Name: "c", Size: 2}}
	if s.DomainSize() != 24 {
		t.Fatalf("DomainSize = %d", s.DomainSize())
	}
	strides := s.Strides()
	if strides[0] != 6 || strides[1] != 2 || strides[2] != 1 {
		t.Fatalf("Strides = %v", strides)
	}
	if s.Index("b") != 1 || s.Index("zz") != -1 {
		t.Fatal("Index lookup wrong")
	}
}

func TestAppendValidates(t *testing.T) {
	tbl := New(Schema{{Name: "a", Size: 2}})
	for _, fn := range []func(){
		func() { tbl.Append(2) },    // out of domain
		func() { tbl.Append(-1) },   // negative
		func() { tbl.Append(0, 1) }, // arity
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWhere(t *testing.T) {
	tbl := sampleTable()
	got := tbl.Where(Predicate{Eq("sex", 1)})
	if got.NumRows() != 3 {
		t.Fatalf("Where rows = %d, want 3", got.NumRows())
	}
	got2 := tbl.Where(Predicate{Between("age", 1, 2), Eq("sex", 1)})
	if got2.NumRows() != 2 {
		t.Fatalf("conjunction rows = %d, want 2", got2.NumRows())
	}
}

func TestSelect(t *testing.T) {
	tbl := sampleTable()
	got := tbl.Select("sex")
	if len(got.Schema()) != 1 || got.Schema()[0].Name != "sex" {
		t.Fatalf("Select schema = %v", got.Schema())
	}
	if got.NumRows() != 5 {
		t.Fatalf("Select rows = %d (bag semantics expected)", got.NumRows())
	}
}

func TestVectorize(t *testing.T) {
	tbl := sampleTable()
	x := tbl.Vectorize()
	if len(x) != 6 {
		t.Fatalf("vector length = %d", len(x))
	}
	// (age=0,sex=0) -> idx 0; (0,1) -> 1; (1,0) -> 2; (2,1) -> 5 twice.
	want := []float64{1, 1, 1, 0, 0, 2}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// Mass conservation.
	var total float64
	for _, v := range x {
		total += v
	}
	if total != float64(tbl.NumRows()) {
		t.Fatal("vectorize lost mass")
	}
}

func TestHistogram(t *testing.T) {
	tbl := sampleTable()
	h := tbl.Histogram("age")
	if h[0] != 2 || h[1] != 1 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestSplitByPartition(t *testing.T) {
	tbl := sampleTable()
	// Group ages {0,1} -> 0, {2} -> 1.
	parts := tbl.SplitByPartition("age", []int{0, 0, 1}, 2)
	if parts[0].NumRows() != 3 || parts[1].NumRows() != 2 {
		t.Fatalf("split sizes = %d, %d", parts[0].NumRows(), parts[1].NumRows())
	}
	// Rows are disjoint and complete.
	if parts[0].NumRows()+parts[1].NumRows() != tbl.NumRows() {
		t.Fatal("split lost rows")
	}
}

func TestSplitByPartitionDrops(t *testing.T) {
	tbl := sampleTable()
	parts := tbl.SplitByPartition("age", []int{-1, 0, -1}, 1)
	if parts[0].NumRows() != 1 {
		t.Fatalf("drop split rows = %d, want 1", parts[0].NumRows())
	}
}

func TestSortBy(t *testing.T) {
	tbl := sampleTable()
	tbl.SortBy("sex")
	col := tbl.Column("sex")
	for i := 1; i < len(col); i++ {
		if col[i-1] > col[i] {
			t.Fatalf("not sorted: %v", col)
		}
	}
}

// Property: Where(p) preserves the schema and never invents rows.
func TestWhereQuick(t *testing.T) {
	f := func(seed uint64, loRaw, hiRaw uint8) bool {
		tbl := Census(seed%16 + 1)
		lo := int(loRaw) % 5
		hi := int(hiRaw) % 5
		if lo > hi {
			lo, hi = hi, lo
		}
		sub := tbl.Where(Predicate{Between("age", lo, hi)})
		if sub.NumRows() > tbl.NumRows() {
			return false
		}
		for _, v := range sub.Column("age") {
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Error(err)
	}
}

func TestSynthetic1DGenerators(t *testing.T) {
	for _, kind := range Synthetic1DKinds {
		x := Synthetic1D(kind, 256, 1000, 7)
		if len(x) != 256 {
			t.Fatalf("%s: length %d", kind, len(x))
		}
		var total float64
		for _, v := range x {
			if v < 0 || v != math.Trunc(v) {
				t.Fatalf("%s: non-integer or negative count %v", kind, v)
			}
			total += v
		}
		if total != 1000 {
			t.Fatalf("%s: total mass %v, want 1000", kind, total)
		}
	}
}

func TestSynthetic1DUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Synthetic1D("nope", 8, 10, 1)
}

func TestSynthetic1DDeterministic(t *testing.T) {
	a := Synthetic1D("zipf", 64, 500, 3)
	b := Synthetic1D("zipf", 64, 500, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestCensusShape(t *testing.T) {
	tbl := Census(1)
	if tbl.NumRows() != CensusRows {
		t.Fatalf("census rows = %d", tbl.NumRows())
	}
	if tbl.Schema().DomainSize() != 1400000 {
		t.Fatalf("census domain = %d, want 1400000", tbl.Schema().DomainSize())
	}
	// Income should be heavy-tailed: the top bucket region is sparse but
	// the low-income region dense.
	h := tbl.Histogram("income")
	var lowMass, highMass float64
	for i := 0; i < 500; i++ {
		lowMass += h[i]
	}
	for i := 4500; i < 5000; i++ {
		highMass += h[i]
	}
	if lowMass <= 10*highMass {
		t.Fatalf("income not heavy-tailed: low %v high %v", lowMass, highMass)
	}
}

func TestCensusAgeStatusCorrelation(t *testing.T) {
	tbl := Census(2)
	// Young (age=0) heads-of-household should be mostly never-married
	// (status 4) relative to older ones.
	young := tbl.Where(Predicate{Eq("age", 0)})
	old := tbl.Where(Predicate{Eq("age", 3)})
	youngNM := float64(young.Where(Predicate{Eq("status", 4)}).NumRows()) / float64(young.NumRows())
	oldNM := float64(old.Where(Predicate{Eq("status", 4)}).NumRows()) / float64(old.NumRows())
	if youngNM < 2*oldNM {
		t.Fatalf("age/status correlation missing: young %v old %v", youngNM, oldNM)
	}
}

func TestCreditDefaultShape(t *testing.T) {
	tbl := CreditDefault(1)
	if tbl.NumRows() != CreditRows {
		t.Fatalf("credit rows = %d", tbl.NumRows())
	}
	// Predictor domain (without the label) must be 17,248 as in §9.3.
	predictors := tbl.Schema()[1:]
	prod := 1
	for _, a := range predictors {
		prod *= a.Size
	}
	if prod != 17248 {
		t.Fatalf("predictor domain = %d, want 17248", prod)
	}
	// Label imbalance near 22%.
	defaults := tbl.Where(Predicate{Eq("default", 1)}).NumRows()
	frac := float64(defaults) / float64(tbl.NumRows())
	if frac < 0.18 || frac > 0.26 {
		t.Fatalf("default rate = %v", frac)
	}
}

func TestCreditDefaultSignal(t *testing.T) {
	tbl := CreditDefault(3)
	// Defaulters should have visibly higher mean pay status.
	def := tbl.Where(Predicate{Eq("default", 1)})
	ok := tbl.Where(Predicate{Eq("default", 0)})
	if meanInt(def.Column("paystatus")) < meanInt(ok.Column("paystatus"))+1 {
		t.Fatal("credit data carries no label signal")
	}
}

func TestGrid2D(t *testing.T) {
	x := Grid2D(32, 32, 5000, 9)
	if len(x) != 1024 {
		t.Fatalf("grid len = %d", len(x))
	}
	var total float64
	for _, v := range x {
		total += v
	}
	if total != 5000 {
		t.Fatalf("grid mass = %v", total)
	}
	// Clustered: max cell should far exceed the uniform level.
	var maxV float64
	for _, v := range x {
		if v > maxV {
			maxV = v
		}
	}
	if maxV < 3*total/1024 {
		t.Fatalf("grid not clustered: max %v", maxV)
	}
}

func meanInt(xs []int) float64 {
	var s float64
	for _, v := range xs {
		s += float64(v)
	}
	return s / float64(len(xs))
}
