package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func sampleCodecs() []ColumnCodec {
	return []ColumnCodec{
		Bucketize("income", 10, 0, 100000),
		Categorical("gender", "M", "F"),
		IntColumn("age", 5),
	}
}

func TestReadCSVBasic(t *testing.T) {
	csvData := `income,gender,age,ignored
25000,M,2,x
99999,F,0,y
5000,M,4,z
`
	tbl, err := ReadCSV(strings.NewReader(csvData), sampleCodecs())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if got := tbl.Row(0); got[0] != 2 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("row 0 = %v", got)
	}
	if got := tbl.Row(1); got[0] != 9 || got[1] != 1 {
		t.Fatalf("row 1 = %v", got)
	}
}

func TestReadCSVBucketClamping(t *testing.T) {
	csvData := "income,gender,age\n-50,M,0\n1e9,F,1\n"
	tbl, err := ReadCSV(strings.NewReader(csvData), sampleCodecs())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Row(0)[0] != 0 || tbl.Row(1)[0] != 9 {
		t.Fatalf("clamping failed: %v %v", tbl.Row(0), tbl.Row(1))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing column":    "gender,age\nM,0\n",
		"unknown category":  "income,gender,age\n1,X,0\n",
		"non-numeric field": "income,gender,age\nabc,M,0\n",
		"int out of domain": "income,gender,age\n1,M,9\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data), sampleCodecs()); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	codecs := sampleCodecs()
	tbl := New(Schema{codecs[0].Attr, codecs[1].Attr, codecs[2].Attr})
	tbl.Append(3, 1, 2)
	tbl.Append(0, 0, 4)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl, codecs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, codecs)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 {
		t.Fatalf("round-trip rows = %d", back.NumRows())
	}
	for i := 0; i < 2; i++ {
		a, b := tbl.Row(i), back.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d: %v != %v", i, a, b)
			}
		}
	}
}

func TestWriteCSVIntegerFallback(t *testing.T) {
	tbl := New(Schema{{Name: "a", Size: 3}})
	tbl.Append(2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2") {
		t.Fatalf("output = %q", buf.String())
	}
}

func TestCodecValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Bucketize("x", 0, 0, 1) },
		func() { Bucketize("x", 5, 3, 3) },
		func() { Categorical("x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
