package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// This file provides CSV ingestion and export for Table, the path by
// which real data enters the framework. Raw column values are mapped
// into the discrete attribute domains either by integer bucketing
// (Bucketize) or by categorical dictionary (Categorical), matching the
// paper's assumption that every attribute is discrete or suitably
// discretized (§3).

// ColumnCodec maps one raw CSV column into an attribute domain.
type ColumnCodec struct {
	// Attr is the attribute this codec produces.
	Attr Attribute
	// Encode maps the raw field to a value in [0, Attr.Size); it returns
	// an error for unmappable fields.
	Encode func(field string) (int, error)
	// Decode maps a domain value back to a representative field for
	// WriteCSV; nil falls back to the integer form.
	Decode func(v int) string
}

// Bucketize returns a codec that parses numeric fields and buckets the
// range [lo, hi) uniformly into size buckets, clamping out-of-range
// values to the boundary buckets.
func Bucketize(name string, size int, lo, hi float64) ColumnCodec {
	if size <= 0 || hi <= lo {
		panic(fmt.Sprintf("dataset: Bucketize(%q) invalid parameters", name))
	}
	width := (hi - lo) / float64(size)
	return ColumnCodec{
		Attr: Attribute{Name: name, Size: size},
		Encode: func(field string) (int, error) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return 0, fmt.Errorf("dataset: column %q: %w", name, err)
			}
			b := int((v - lo) / width)
			if b < 0 {
				b = 0
			}
			if b >= size {
				b = size - 1
			}
			return b, nil
		},
		Decode: func(v int) string {
			return strconv.FormatFloat(lo+(float64(v)+0.5)*width, 'g', -1, 64)
		},
	}
}

// Categorical returns a codec with a fixed value dictionary; unknown
// fields are errors.
func Categorical(name string, values ...string) ColumnCodec {
	if len(values) == 0 {
		panic(fmt.Sprintf("dataset: Categorical(%q) needs values", name))
	}
	index := make(map[string]int, len(values))
	for i, v := range values {
		index[v] = i
	}
	return ColumnCodec{
		Attr: Attribute{Name: name, Size: len(values)},
		Encode: func(field string) (int, error) {
			v, ok := index[field]
			if !ok {
				return 0, fmt.Errorf("dataset: column %q: unknown value %q", name, field)
			}
			return v, nil
		},
		Decode: func(v int) string { return values[v] },
	}
}

// IntColumn returns a codec for fields that are already domain indices
// in [0, size).
func IntColumn(name string, size int) ColumnCodec {
	return ColumnCodec{
		Attr: Attribute{Name: name, Size: size},
		Encode: func(field string) (int, error) {
			v, err := strconv.Atoi(field)
			if err != nil {
				return 0, fmt.Errorf("dataset: column %q: %w", name, err)
			}
			if v < 0 || v >= size {
				return 0, fmt.Errorf("dataset: column %q: value %d outside [0,%d)", name, v, size)
			}
			return v, nil
		},
	}
}

// ReadCSV parses CSV content whose header row names must include every
// codec's attribute name, producing a table with the codecs' schema
// (codec order). Extra CSV columns are ignored.
func ReadCSV(r io.Reader, codecs []ColumnCodec) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	colIdx := make([]int, len(codecs))
	for i, c := range codecs {
		colIdx[i] = -1
		for j, name := range header {
			if name == c.Attr.Name {
				colIdx[i] = j
				break
			}
		}
		if colIdx[i] < 0 {
			return nil, fmt.Errorf("dataset: CSV missing column %q", c.Attr.Name)
		}
	}
	schema := make(Schema, len(codecs))
	for i, c := range codecs {
		schema[i] = c.Attr
	}
	t := New(schema)
	row := make([]int, len(codecs))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		for i, c := range codecs {
			v, err := c.Encode(rec[colIdx[i]])
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
			}
			row[i] = v
		}
		t.Append(row...)
	}
	return t, nil
}

// WriteCSV writes the table with a header row, using the codecs'
// decoders when available (codecs may be nil for plain integer output;
// when non-nil it must match the schema order).
func WriteCSV(w io.Writer, t *Table, codecs []ColumnCodec) error {
	cw := csv.NewWriter(w)
	schema := t.Schema()
	header := make([]string, len(schema))
	for i, a := range schema {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := t.NumRows()
	rec := make([]string, len(schema))
	for i := 0; i < n; i++ {
		row := t.Row(i)
		for j, v := range row {
			if codecs != nil && codecs[j].Decode != nil {
				rec[j] = codecs[j].Decode(v)
			} else {
				rec[j] = strconv.Itoa(v)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
