package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// This file holds the synthetic data generators that substitute for the
// paper's external datasets (DPBench 1-D distributions, the March-2000
// CPS Census extract, and the Credit Default data). See DESIGN.md §5 for
// the substitution rationale: each generator preserves the qualitative
// properties (skew, sparsity, cluster structure, attribute correlation)
// that drive the data-dependent algorithms' behaviour.

func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x51f15ead0badcafe))
}

// Synthetic1DKinds lists the named 1-D distributions, spanning the axes
// the DPBench datasets vary: uniformity, sparsity, spikes, smoothness and
// cluster structure.
var Synthetic1DKinds = []string{
	"uniform", "zipf", "gauss-mix", "piecewise", "spikes",
	"ramp", "bimodal", "sparse", "steps", "power",
}

// Synthetic1D returns a 1-D count vector of length n whose total mass is
// close to scale records, drawn from the named distribution family.
func Synthetic1D(kind string, n int, scale float64, seed uint64) []float64 {
	rng := newRand(seed)
	w := make([]float64, n)
	switch kind {
	case "uniform":
		for i := range w {
			w[i] = 1
		}
	case "zipf":
		for i := range w {
			w[i] = 1 / math.Pow(float64(i+1), 1.1)
		}
		shuffleFloat(rng, w)
	case "gauss-mix":
		centers := []float64{0.2, 0.5, 0.8}
		widths := []float64{0.02, 0.08, 0.04}
		heights := []float64{1, 0.6, 1.4}
		for i := range w {
			t := float64(i) / float64(n)
			for c := range centers {
				d := (t - centers[c]) / widths[c]
				w[i] += heights[c] * math.Exp(-d*d/2)
			}
		}
	case "piecewise":
		// Few uniform segments of very different levels: DAWA/AHP friendly.
		nSeg := 8
		for s := 0; s < nSeg; s++ {
			level := math.Exp(rng.Float64()*6 - 3)
			lo, hi := s*n/nSeg, (s+1)*n/nSeg
			for i := lo; i < hi; i++ {
				w[i] = level
			}
		}
	case "spikes":
		for i := range w {
			w[i] = 0.01
		}
		for s := 0; s < 12; s++ {
			w[rng.IntN(n)] = 20 * (1 + rng.Float64())
		}
	case "ramp":
		for i := range w {
			w[i] = float64(i+1) / float64(n)
		}
	case "bimodal":
		for i := range w {
			t := float64(i) / float64(n)
			d1 := (t - 0.25) / 0.05
			d2 := (t - 0.75) / 0.05
			w[i] = math.Exp(-d1*d1/2) + math.Exp(-d2*d2/2) + 0.01
		}
	case "sparse":
		// 95% empty cells, a few dense clusters.
		for c := 0; c < 5; c++ {
			center := rng.IntN(n)
			for k := -n / 100; k <= n/100; k++ {
				i := center + k
				if i >= 0 && i < n {
					w[i] += math.Exp(-float64(k*k) / float64(n*n/4000+1))
				}
			}
		}
	case "steps":
		level := 1.0
		for i := range w {
			if i%max(1, n/16) == 0 {
				level = math.Exp(rng.Float64()*4 - 2)
			}
			w[i] = level
		}
	case "power":
		for i := range w {
			w[i] = math.Pow(float64(i+1), -0.5)
		}
	default:
		panic(fmt.Sprintf("dataset: unknown Synthetic1D kind %q", kind))
	}
	// Normalize to the requested total mass and sample multinomially so
	// counts are non-negative integers like real histograms. A cumulative
	// table plus binary search keeps this O(records·log n).
	cum := make([]float64, n)
	var total float64
	for i, v := range w {
		total += v
		cum[i] = total
	}
	x := make([]float64, n)
	for r := 0; r < int(scale); r++ {
		u := rng.Float64() * total
		i := sort.SearchFloat64s(cum, u)
		if i >= n {
			i = n - 1
		}
		x[i]++
	}
	return x
}

func shuffleFloat(rng *rand.Rand, w []float64) {
	for i := len(w) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		w[i], w[j] = w[j], w[i]
	}
}

// CensusSchema is the schema of the synthetic CPS-like extract of the
// paper's §9.2 case study: Income in 5000 uniform ranges, Age in 5
// uniform ranges, 7 marital statuses, 4 races, 2 genders — a domain of
// 1,400,000 cells.
var CensusSchema = Schema{
	{Name: "income", Size: 5000},
	{Name: "age", Size: 5},
	{Name: "status", Size: 7},
	{Name: "race", Size: 4},
	{Name: "gender", Size: 2},
}

// CensusRows matches the paper's 49,436 heads-of-household.
const CensusRows = 49436

// Census generates the synthetic CPS-like table: heavy-tailed income
// (log-normal mixture), age/status correlation, skewed race and gender
// marginals. See DESIGN.md §5.
func Census(seed uint64) *Table {
	rng := newRand(seed)
	t := New(CensusSchema)
	for i := 0; i < CensusRows; i++ {
		age := sampleWeights(rng, []float64{0.18, 0.24, 0.23, 0.20, 0.15})
		// Income: log-normal with age-dependent location; bucketized over
		// (0, 750000) in 5000 uniform ranges of 150 each.
		mu := 10.2 + 0.18*float64(age)
		if age == 4 {
			mu -= 0.35 // retirement dip
		}
		income := math.Exp(mu + 0.7*rng.NormFloat64())
		bucket := int(income / 150)
		if bucket >= 5000 {
			bucket = 4999
		}
		// Marital status correlates with age: young mostly never-married.
		var status int
		if age == 0 {
			status = sampleWeights(rng, []float64{0.15, 0.02, 0.03, 0.01, 0.70, 0.05, 0.04})
		} else {
			status = sampleWeights(rng, []float64{0.55, 0.03, 0.10, 0.12, 0.12, 0.05, 0.03})
		}
		race := sampleWeights(rng, []float64{0.78, 0.11, 0.06, 0.05})
		gender := sampleWeights(rng, []float64{0.55, 0.45})
		t.Append(bucket, age, status, race, gender)
	}
	return t
}

// CreditSchema is the schema of the synthetic Credit-Default-like data of
// §9.3: the binary label plus four predictors X3–X6 with a combined
// predictor domain of 7·4·11·56 = 17,248 cells, matching the paper.
var CreditSchema = Schema{
	{Name: "default", Size: 2},
	{Name: "education", Size: 7},
	{Name: "marriage", Size: 4},
	{Name: "paystatus", Size: 11},
	{Name: "age", Size: 56},
}

// CreditRows matches the 30,000 clients of the Credit Default data.
const CreditRows = 30000

// CreditDefault generates the synthetic credit-card data. The label is
// imbalanced (~22% default) and correlated with pay status and,
// more weakly, education and age, giving a learnable but noisy signal.
func CreditDefault(seed uint64) *Table {
	rng := newRand(seed)
	t := New(CreditSchema)
	for i := 0; i < CreditRows; i++ {
		def := 0
		if rng.Float64() < 0.22 {
			def = 1
		}
		var pay int
		if def == 1 {
			pay = clampInt(int(3.5+2.2*rng.NormFloat64()), 0, 10)
		} else {
			pay = clampInt(int(1.2+1.5*rng.NormFloat64()), 0, 10)
		}
		var edu int
		if def == 1 {
			edu = sampleWeights(rng, []float64{0.10, 0.28, 0.34, 0.16, 0.05, 0.04, 0.03})
		} else {
			edu = sampleWeights(rng, []float64{0.16, 0.38, 0.30, 0.10, 0.03, 0.02, 0.01})
		}
		marriage := sampleWeights(rng, []float64{0.05, 0.45, 0.47, 0.03})
		base := 34.0
		if def == 1 {
			base = 37.5
		}
		age := clampInt(int(base+9*rng.NormFloat64())-21, 0, 55)
		t.Append(def, edu, marriage, pay, age)
	}
	return t
}

// Grid2D returns a 2-D count vector (row-major h×w) with clustered mass,
// standing in for the spatial datasets used by the grid algorithms.
func Grid2D(h, w int, scale float64, seed uint64) []float64 {
	rng := newRand(seed)
	x := make([]float64, h*w)
	nClusters := 6
	type cluster struct{ cy, cx, sy, sx, weight float64 }
	clusters := make([]cluster, nClusters)
	for c := range clusters {
		clusters[c] = cluster{
			cy: rng.Float64(), cx: rng.Float64(),
			sy: 0.02 + 0.1*rng.Float64(), sx: 0.02 + 0.1*rng.Float64(),
			weight: rng.Float64() + 0.2,
		}
	}
	var totalW float64
	for _, c := range clusters {
		totalW += c.weight
	}
	for r := 0; r < int(scale); r++ {
		u := rng.Float64() * totalW
		var acc float64
		var pick cluster
		for _, c := range clusters {
			acc += c.weight
			if u < acc {
				pick = c
				break
			}
		}
		i := clampInt(int((pick.cy+pick.sy*rng.NormFloat64())*float64(h)), 0, h-1)
		j := clampInt(int((pick.cx+pick.sx*rng.NormFloat64())*float64(w)), 0, w-1)
		x[i*w+j]++
	}
	return x
}

func sampleWeights(rng *rand.Rand, w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	u := rng.Float64() * total
	var acc float64
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
