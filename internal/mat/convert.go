package mat

// This file provides structure-aware conversion of implicit matrices to
// explicit CSR form, used by the representation-comparison experiments
// (paper §10.2: dense vs sparse vs implicit). Conversion walks the
// implicit constructors instead of materializing through mat-vec
// products, so it costs O(nnz).

// ToSparse converts m to an explicit CSR matrix when a structure-aware
// conversion exists and the result has at most maxNNZ stored entries
// (maxNNZ <= 0 means unlimited). It returns false when the matrix type
// has no efficient explicit form or the budget is exceeded.
func ToSparse(m Matrix, maxNNZ int) (*Sparse, bool) {
	tri, ok := toTriplets(m, maxNNZ)
	if !ok {
		return nil, false
	}
	r, c := m.Dims()
	return NewSparse(r, c, tri), true
}

// toTriplets returns the coordinate entries of m, or false when the
// structure is not efficiently convertible.
func toTriplets(m Matrix, maxNNZ int) ([]Triplet, bool) {
	within := func(n int) bool { return maxNNZ <= 0 || n <= maxNNZ }
	switch t := m.(type) {
	case *Sparse:
		if !within(t.NNZ()) {
			return nil, false
		}
		var out []Triplet
		for i := 0; i < t.rows; i++ {
			cols, vals := t.RowNNZ(i)
			for k, c := range cols {
				out = append(out, Triplet{Row: i, Col: c, Val: vals[k]})
			}
		}
		return out, true
	case *Dense:
		r, c := t.Dims()
		if !within(r * c) {
			return nil, false
		}
		var out []Triplet
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if v := t.At(i, j); v != 0 {
					out = append(out, Triplet{Row: i, Col: j, Val: v})
				}
			}
		}
		return out, true
	case *IdentityMat:
		if !within(t.n) {
			return nil, false
		}
		out := make([]Triplet, t.n)
		for i := range out {
			out[i] = Triplet{Row: i, Col: i, Val: 1}
		}
		return out, true
	case *DiagMat:
		if !within(len(t.d)) {
			return nil, false
		}
		var out []Triplet
		for i, v := range t.d {
			if v != 0 {
				out = append(out, Triplet{Row: i, Col: i, Val: v})
			}
		}
		return out, true
	case *OnesMat:
		if !within(t.r * t.c) {
			return nil, false
		}
		out := make([]Triplet, 0, t.r*t.c)
		for i := 0; i < t.r; i++ {
			for j := 0; j < t.c; j++ {
				out = append(out, Triplet{Row: i, Col: j, Val: 1})
			}
		}
		return out, true
	case *PrefixMat:
		if !within(t.n * (t.n + 1) / 2) {
			return nil, false
		}
		var out []Triplet
		for i := 0; i < t.n; i++ {
			for j := 0; j <= i; j++ {
				out = append(out, Triplet{Row: i, Col: j, Val: 1})
			}
		}
		return out, true
	case *SuffixMat:
		if !within(t.n * (t.n + 1) / 2) {
			return nil, false
		}
		var out []Triplet
		for i := 0; i < t.n; i++ {
			for j := i; j < t.n; j++ {
				out = append(out, Triplet{Row: i, Col: j, Val: 1})
			}
		}
		return out, true
	case *RangeQueriesMat:
		return rangeTriplets(t, maxNNZ)
	case *VStackMat:
		var out []Triplet
		off := 0
		for _, b := range t.blocks {
			sub, ok := toTriplets(b, maxNNZ)
			if !ok {
				return nil, false
			}
			for _, e := range sub {
				out = append(out, Triplet{Row: e.Row + off, Col: e.Col, Val: e.Val})
			}
			if maxNNZ > 0 && len(out) > maxNNZ {
				return nil, false
			}
			br, _ := b.Dims()
			off += br
		}
		return out, true
	case *ScaledMat:
		sub, ok := toTriplets(t.m, maxNNZ)
		if !ok {
			return nil, false
		}
		for i := range sub {
			sub[i].Val *= t.c
		}
		return sub, true
	case *rowScaledMat:
		sub, ok := toTriplets(t.m, maxNNZ)
		if !ok {
			return nil, false
		}
		for i := range sub {
			sub[i].Val *= t.w[sub[i].Row]
		}
		return sub, true
	case *TransposeMat:
		sub, ok := toTriplets(t.m, maxNNZ)
		if !ok {
			return nil, false
		}
		for i := range sub {
			sub[i].Row, sub[i].Col = sub[i].Col, sub[i].Row
		}
		return sub, true
	case *KroneckerMat:
		a, ok := toTriplets(t.a, maxNNZ)
		if !ok {
			return nil, false
		}
		b, ok := toTriplets(t.b, maxNNZ)
		if !ok {
			return nil, false
		}
		if maxNNZ > 0 && len(a)*len(b) > maxNNZ {
			return nil, false
		}
		_, bc := t.b.Dims()
		br, _ := t.b.Dims()
		out := make([]Triplet, 0, len(a)*len(b))
		for _, ea := range a {
			for _, eb := range b {
				out = append(out, Triplet{
					Row: ea.Row*br + eb.Row,
					Col: ea.Col*bc + eb.Col,
					Val: ea.Val * eb.Val,
				})
			}
		}
		return out, true
	default:
		return nil, false
	}
}

// rangeTriplets expands a range-query matrix into one entry per covered
// cell.
func rangeTriplets(m *RangeQueriesMat, maxNNZ int) ([]Triplet, bool) {
	shape := m.Shape()
	strides := make([]int, len(shape))
	n := 1
	for k := len(shape) - 1; k >= 0; k-- {
		strides[k] = n
		n *= shape[k]
	}
	var out []Triplet
	idx := make([]int, len(shape))
	for qi, box := range m.Ranges() {
		// Iterate the box cells.
		copy(idx, box.Lo)
		for {
			cell := 0
			for k, v := range idx {
				cell += v * strides[k]
			}
			out = append(out, Triplet{Row: qi, Col: cell, Val: 1})
			if maxNNZ > 0 && len(out) > maxNNZ {
				return nil, false
			}
			// Advance the multi-index.
			k := len(idx) - 1
			for k >= 0 {
				idx[k]++
				if idx[k] <= box.Hi[k] {
					break
				}
				idx[k] = box.Lo[k]
				k--
			}
			if k < 0 {
				break
			}
		}
	}
	return out, true
}
