package mat

import (
	"math/rand/v2"
	"testing"

	"repro/internal/vec"
)

// matMatRef computes the panel product column by column through MatVec —
// the reference the batched kernels must match exactly in structure
// (they share per-column accumulation order) and to rounding otherwise.
func matMatRef(m Matrix, x []float64, k int) []float64 {
	r, c := m.Dims()
	dst := make([]float64, r*k)
	xc := make([]float64, c)
	yc := make([]float64, r)
	for col := 0; col < k; col++ {
		for j := 0; j < c; j++ {
			xc[j] = x[j*k+col]
		}
		m.MatVec(yc, xc)
		for i := 0; i < r; i++ {
			dst[i*k+col] = yc[i]
		}
	}
	return dst
}

func tMatMatRef(m Matrix, x []float64, k int) []float64 {
	return matMatRef(T(m), x, k)
}

// matMatCases builds one instance of every matrix type in the package,
// sized so both the serial and (at low thresholds) structured paths are
// exercised.
func matMatCases(rng *rand.Rand) map[string]Matrix {
	dense := NewDense(13, 9, nil)
	for i := range dense.data {
		dense.data[i] = rng.Float64()*4 - 2
	}
	var tri []Triplet
	for i := 0; i < 17; i++ {
		for q := 0; q < 3; q++ {
			tri = append(tri, Triplet{Row: i, Col: rng.IntN(11), Val: float64(rng.IntN(7)) - 3})
		}
	}
	sparse := NewSparse(17, 11, tri)
	diag := make([]float64, 9)
	w := make([]float64, 13)
	for i := range diag {
		diag[i] = rng.Float64()*2 - 1
	}
	for i := range w {
		w[i] = rng.Float64()*2 - 1
	}
	return map[string]Matrix{
		"identity":   Identity(8),
		"ones":       Ones(5, 7),
		"total":      Total(9),
		"prefix":     Prefix(10),
		"suffix":     Suffix(10),
		"wavelet":    Wavelet(16),
		"waveletAbs": Abs(Wavelet(8)),
		"dense":      dense,
		"sparse":     sparse,
		"vstack":     VStack(Identity(9), dense, Ones(2, 9)),
		"product":    Product(dense, Diag(diag)),
		"kron":       Kron(Prefix(4), dense),
		"kron3":      Kron(Identity(3), Prefix(4), Total(5)),
		"transpose":  T(dense),
		"scaled":     Scaled(-1.25, sparse),
		"diag":       Diag(diag),
		"rowscaled":  RowScaled(w, dense),
		"ranges": RangeQueries(12, []Range1D{
			{Lo: 0, Hi: 11}, {Lo: 3, Hi: 5}, {Lo: 7, Hi: 7}, {Lo: 0, Hi: 6},
		}),
		"ndranges": NDRangeQueries([]int{4, 3}, []RangeND{
			{Lo: []int{0, 0}, Hi: []int{3, 2}},
			{Lo: []int{1, 1}, Hi: []int{2, 2}},
		}),
	}
}

// TestMatMatMatchesMatVec pins every matrix type's batched kernels to
// the column-by-column MatVec reference across panel widths, including
// widths around the 4-wide unroll boundary.
func TestMatMatMatchesMatVec(t *testing.T) {
	rng := testRand()
	for name, m := range matMatCases(rng) {
		r, c := m.Dims()
		for _, k := range []int{1, 2, 3, 4, 5, 8} {
			x := randVec(rng, c*k)
			xt := randVec(rng, r*k)
			dst := make([]float64, r*k)
			dstT := make([]float64, c*k)
			MatMat(m, dst, x, k)
			TMatMat(m, dstT, xt, k)
			if !vec.AllClose(dst, matMatRef(m, x, k), 1e-12, 1e-12) {
				t.Errorf("%s: MatMat k=%d differs from MatVec reference", name, k)
			}
			if !vec.AllClose(dstT, tMatMatRef(m, xt, k), 1e-12, 1e-12) {
				t.Errorf("%s: TMatMat k=%d differs from MatVec reference", name, k)
			}
		}
	}
}

// TestMatMatParallelMatchesSerial pins the engine panel kernels to the
// serial path on matrices large enough to take the parallel route.
func TestMatMatParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	const k = 6
	for name, m := range largeMats() {
		r, c := m.Dims()
		x := make([]float64, c*k)
		for i := range x {
			x[i] = float64(i%11) - 5
		}
		xt := make([]float64, r*k)
		for i := range xt {
			xt[i] = float64(i%7) - 3
		}
		SetParallelism(1)
		want := make([]float64, r*k)
		wantT := make([]float64, c*k)
		MatMat(m, want, x, k)
		TMatMat(m, wantT, xt, k)
		for _, p := range []int{2, 5} {
			SetParallelism(p)
			got := make([]float64, r*k)
			gotT := make([]float64, c*k)
			MatMat(m, got, x, k)
			TMatMat(m, gotT, xt, k)
			if !vec.AllClose(got, want, 1e-12, 1e-12) {
				t.Errorf("%s: parallel(%d) MatMat differs from serial", name, p)
			}
			if !vec.AllClose(gotT, wantT, 1e-12, 1e-12) {
				t.Errorf("%s: parallel(%d) TMatMat differs from serial", name, p)
			}
		}
	}
}

// TestMatMatZeroAllocs asserts the acceptance criterion: steady-state
// MatMat/TMatMat on Dense and CSR panels perform zero heap allocations
// on the serial path and through the parallel engine.
func TestMatMatZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache under the race detector")
	}
	defer SetParallelism(0)
	const k = 8
	mats := largeMats()
	for _, par := range []int{1, 4} {
		SetParallelism(par)
		for _, name := range []string{"dense", "sparse", "vstack", "kron"} {
			m := mats[name]
			r, c := m.Dims()
			x := make([]float64, c*k)
			dst := make([]float64, r*k)
			xt := make([]float64, r*k)
			dstT := make([]float64, c*k)
			for i := 0; i < 3; i++ {
				MatMat(m, dst, x, k)
				TMatMat(m, dstT, xt, k)
			}
			if a := testing.AllocsPerRun(20, func() { MatMat(m, dst, x, k) }); a != 0 {
				t.Errorf("%s p=%d: MatMat allocates %.1f/op, want 0", name, par, a)
			}
			if a := testing.AllocsPerRun(20, func() { TMatMat(m, dstT, xt, k) }); a != 0 {
				t.Errorf("%s p=%d: TMatMat allocates %.1f/op, want 0", name, par, a)
			}
		}
	}
}

// TestGramBlockedMatchesGeneric pins the blocked Dense/CSR Gram kernels
// and the ProductMat/RangeQueriesMat sandwich path to the
// column-at-a-time reference, serially and through the engine.
func TestGramBlockedMatchesGeneric(t *testing.T) {
	defer SetParallelism(0)
	rng := testRand()
	dense := NewDense(37, 21, nil)
	for i := range dense.data {
		dense.data[i] = rng.Float64()*4 - 2
	}
	var tri []Triplet
	for i := 0; i < 50; i++ {
		for q := 0; q < 4; q++ {
			tri = append(tri, Triplet{Row: i, Col: rng.IntN(19), Val: float64(rng.IntN(9)) - 4})
		}
	}
	sparse := NewSparse(50, 19, tri)
	// Shapes sized past the engine threshold and the partial-Gram merge
	// guards, so the p>1 leg takes the parallel row-range path.
	bigDense := NewDense(600, 64, nil)
	for i := range bigDense.data {
		bigDense.data[i] = rng.Float64()*2 - 1
	}
	var bigTri []Triplet
	for i := 0; i < 2400; i++ {
		for q := 0; q < 16; q++ {
			bigTri = append(bigTri, Triplet{Row: i, Col: rng.IntN(48), Val: float64(rng.IntN(9)) - 4})
		}
	}
	bigSparse := NewSparse(2400, 48, bigTri)
	ranges := RangeQueries(24, HierarchicalRanges(24, 2))
	cases := map[string]Matrix{
		"dense":     dense,
		"sparse":    sparse,
		"bigdense":  bigDense,
		"bigsparse": bigSparse,
		"ranges":    ranges,
		"product":   ranges.inner,
		"h2union":   VStack(Identity(24), ranges),
		"ndranges": NDRangeQueries([]int{5, 4, 3}, []RangeND{
			{Lo: []int{0, 0, 0}, Hi: []int{4, 3, 2}},
			{Lo: []int{1, 1, 1}, Hi: []int{3, 2, 2}},
			{Lo: []int{2, 0, 1}, Hi: []int{2, 3, 1}},
			{Lo: []int{0, 2, 0}, Hi: []int{4, 2, 2}},
		}),
	}
	for _, p := range []int{1, 4} {
		SetParallelism(p)
		for name, m := range cases {
			got := Gram(m)
			want := GramColumns(m)
			if !Equal(got, want, 1e-9) {
				t.Errorf("p=%d Gram(%s) disagrees with column build", p, name)
			}
			// GramInto must agree with Gram: bit-for-bit on the serial
			// path; within rounding on the parallel path, where the
			// work-stealing row partition (and so the partial-sum merge
			// order) varies run to run.
			_, c := m.Dims()
			g2 := NewDense(c, c, nil)
			GramInto(g2, m)
			if p == 1 {
				for i := range g2.data {
					if g2.data[i] != got.data[i] {
						t.Errorf("p=%d GramInto(%s) diverges from Gram at %d", p, name, i)
						break
					}
				}
			} else if !Equal(g2, got, 1e-9) {
				t.Errorf("p=%d GramInto(%s) disagrees with Gram beyond rounding", p, name)
			}
		}
	}
}

// TestGramIntoAllocFree asserts the acceptance criterion: the blocked
// Gram path reusing a caller-provided output is 0 allocs/op steady-state
// for Dense and CSR, serially and on the engine path.
func TestGramIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache under the race detector")
	}
	defer SetParallelism(0)
	rng := testRand()
	n := 64
	dense := NewDense(600, n, nil)
	for i := range dense.data {
		dense.data[i] = rng.Float64()*2 - 1
	}
	var tri []Triplet
	for i := 0; i < 2400; i++ {
		for q := 0; q < 16; q++ {
			tri = append(tri, Triplet{Row: i, Col: rng.IntN(n), Val: float64(rng.IntN(9)) - 4})
		}
	}
	sparse := NewSparse(2400, n, tri)
	for _, par := range []int{1, 4} {
		SetParallelism(par)
		for name, m := range map[string]Matrix{"dense": dense, "sparse": sparse} {
			g := NewDense(n, n, nil)
			GramInto(g, m) // warm task pool and accumulators
			if a := testing.AllocsPerRun(10, func() { GramInto(g, m) }); a != 0 {
				t.Errorf("%s p=%d: GramInto allocates %.1f/op, want 0", name, par, a)
			}
		}
	}
}

// TestMaterializePanelPaths checks the MatMat-based Materialize against
// element-wise extraction for tall, wide and panel-unaligned shapes.
func TestMaterializePanelPaths(t *testing.T) {
	rng := testRand()
	shapes := []struct{ r, c int }{
		{3, 70},  // wide, c > materializePanel, unaligned
		{70, 3},  // tall
		{40, 40}, // square, panel-aligned at 32+8
		{1, 1},
	}
	for _, sh := range shapes {
		d := NewDense(sh.r, sh.c, nil)
		for i := range d.data {
			d.data[i] = rng.Float64()*4 - 2
		}
		m := Scaled(1, d) // wrap so Materialize can't shortcut on *Dense
		got := Materialize(m)
		for i := 0; i < sh.r; i++ {
			for j := 0; j < sh.c; j++ {
				if got.At(i, j) != d.At(i, j) {
					t.Fatalf("materialize %dx%d mismatch at (%d,%d)", sh.r, sh.c, i, j)
				}
			}
		}
	}
}

// FuzzMatMat cross-checks the CSR and Dense batched kernels against the
// MatVec reference on fuzz-generated matrices and panels.
func FuzzMatMat(f *testing.F) {
	f.Add([]byte{1, 2, 3, 9, 8, 7, 220, 13, 5}, uint8(3))
	f.Add([]byte{0, 0, 0, 255, 255, 255}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8) {
		rows, cols := 7, 5
		k := int(kRaw)%6 + 1
		tri := decodeTriplets(data, rows, cols)
		s := NewSparse(rows, cols, tri)
		d := Materialize(s)
		x := make([]float64, cols*k)
		xt := make([]float64, rows*k)
		for i := range x {
			x[i] = float64((i*13+len(data))%11) - 5
		}
		for i := range xt {
			xt[i] = float64((i*7+len(data))%13) - 6
		}
		want := matMatRef(s, x, k)
		wantT := tMatMatRef(s, xt, k)
		for name, m := range map[string]Matrix{"sparse": s, "dense": d} {
			dst := make([]float64, rows*k)
			dstT := make([]float64, cols*k)
			MatMat(m, dst, x, k)
			TMatMat(m, dstT, xt, k)
			if !vec.AllClose(dst, want, 1e-9, 1e-9) {
				t.Errorf("%s: MatMat k=%d mismatch", name, k)
			}
			if !vec.AllClose(dstT, wantT, 1e-9, 1e-9) {
				t.Errorf("%s: TMatMat k=%d mismatch", name, k)
			}
		}
		// Blocked Gram consistency on the same fuzzed structure.
		if !Equal(Gram(s), GramColumns(s), 1e-9) {
			t.Error("fuzzed CSR Gram disagrees with column build")
		}
	})
}
