//go:build race

package mat

// raceEnabled reports whether the race detector is active. sync.Pool
// intentionally bypasses its cache under the race detector, so strict
// zero-allocation assertions only hold in normal builds.
const raceEnabled = true
