package mat

import "testing"

// TestCombinatorAbsSqrAgainstDense exercises every combinator's Abs and
// Sqr against the dense reference in one sweep.
func TestCombinatorAbsSqrAgainstDense(t *testing.T) {
	neg := DenseFromRows([][]float64{{-1, 2, -3}, {4, -5, 6}})
	cases := map[string]Matrix{
		"vstack":    VStack(neg, Scaled(-1, Ones(2, 3))),
		"product":   Product(neg, Diag([]float64{-1, 2, -0.5})),
		"kron":      Kron(neg, Diag([]float64{-2, 1})),
		"transpose": T(neg),
		"scaled":    Scaled(-2.5, neg),
		"rowscaled": RowScaled([]float64{-1, 3}, neg),
		"diag":      Diag([]float64{-4, 0, 4}),
	}
	for name, m := range cases {
		d := Materialize(m)
		if !Equal(Abs(m), d.Abs(), 1e-12) {
			t.Errorf("%s: Abs mismatch", name)
		}
		if !Equal(Sqr(m), d.Sqr(), 1e-12) {
			t.Errorf("%s: Sqr mismatch", name)
		}
	}
}

func TestVStackBlocksAccessor(t *testing.T) {
	a, b := Identity(3), Total(3)
	v := VStack(a, b)
	blocks := v.Blocks()
	if len(blocks) != 2 || blocks[0] != Matrix(a) || blocks[1] != Matrix(b) {
		t.Fatalf("Blocks = %v", blocks)
	}
}

func TestKroneckerFactorsAccessor(t *testing.T) {
	a, b := Identity(2), Prefix(3)
	k := Kron(a, b).(*KroneckerMat)
	fa, fb := k.Factors()
	if fa != Matrix(a) || fb != Matrix(b) {
		t.Fatal("Factors accessor wrong")
	}
}

func TestProductNonBinaryAbsMaterializes(t *testing.T) {
	// A product with negative entries cannot use the binary shortcut:
	// abs(AB) != abs(A)abs(B) in general, so Abs must materialize and be
	// exact.
	a := DenseFromRows([][]float64{{1, -1}})
	b := DenseFromRows([][]float64{{1}, {1}})
	p := Product(a, b) // materializes to [0]
	absP := Materialize(Abs(p))
	if absP.At(0, 0) != 0 {
		t.Fatalf("abs(product) = %v, want 0 (not 2)", absP.At(0, 0))
	}
}
