package mat

import "sync"

// This file provides the two buffer-reuse mechanisms that make
// steady-state mat-vecs allocation-free (the per-call allocations the
// paper's cost model ignores dominate wall time once matrices are
// implicit):
//
//   - a package-private sync.Pool of scratch vectors used by the
//     combinator kernels (Product, Kronecker, VStack, RowScaled,
//     Wavelet), so that composed mat-vecs stop allocating temporaries on
//     every call without changing the Matrix interface;
//   - an exported Workspace, an explicit free-list the iterative solvers
//     and inference layer thread through their loops to reuse buffers
//     across calls. A nil *Workspace is valid and simply allocates.

// scratchVec wraps a reusable buffer; pooling a pointer type keeps
// sync.Pool round trips allocation-free.
type scratchVec struct{ buf []float64 }

var vecPool = sync.Pool{New: func() any { return new(scratchVec) }}

// getScratch returns a scratch vector with len n. Contents are
// unspecified; kernels that accumulate must zero it first.
func getScratch(n int) *scratchVec {
	s := vecPool.Get().(*scratchVec)
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	s.buf = s.buf[:n]
	return s
}

// put returns the scratch vector to the pool.
func (s *scratchVec) put() { vecPool.Put(s) }

// Workspace is an explicit buffer free-list for callers that run many
// mat-vec-shaped operations in a loop (LSMR iterations, per-round MWEM
// inference, HDMM scoring). Get returns a buffer of the requested
// length, reusing a previously Put buffer when one is large enough; on
// the steady state a balanced Get/Put sequence performs no allocations.
//
// A nil *Workspace is valid: Get allocates and Put is a no-op, so APIs
// can accept an optional workspace without branching. A Workspace is not
// safe for concurrent use.
type Workspace struct {
	free [][]float64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Get returns a []float64 of length n with unspecified contents.
func (w *Workspace) Get(n int) []float64 {
	if w != nil {
		for i := len(w.free) - 1; i >= 0; i-- {
			if cap(w.free[i]) >= n {
				b := w.free[i][:n]
				last := len(w.free) - 1
				w.free[i] = w.free[last]
				w.free[last] = nil
				w.free = w.free[:last]
				return b
			}
		}
	}
	return make([]float64, n)
}

// GetZero returns a zeroed []float64 of length n.
func (w *Workspace) GetZero(n int) []float64 {
	b := w.Get(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// Put returns a buffer obtained from Get for reuse. Putting a buffer
// that is still referenced elsewhere is a caller bug.
func (w *Workspace) Put(b []float64) {
	if w == nil || cap(b) == 0 {
		return
	}
	w.free = append(w.free, b)
}
