package mat

import (
	"fmt"
	"math"
	"slices"
)

// Sparse is a compressed-sparse-row (CSR) matrix: only nonzero entries are
// stored, giving O(nnz) mat-vec cost (paper §7.2, sparse representation).
type Sparse struct {
	rows, cols int
	rowPtr     []int // len rows+1
	colIdx     []int // len nnz
	val        []float64
}

// Triplet is a single (row, col, value) coordinate entry used to build a
// Sparse matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewSparse builds a CSR matrix from coordinate triplets. Duplicate
// coordinates are summed; zero values are kept out of the structure.
func NewSparse(rows, cols int, entries []Triplet) *Sparse {
	for _, t := range entries {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			panic(fmt.Sprintf("mat: NewSparse entry (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols))
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	slices.SortFunc(sorted, func(a, b Triplet) int {
		if a.Row != b.Row {
			return a.Row - b.Row
		}
		return a.Col - b.Col
	})
	s := &Sparse{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	s.colIdx = make([]int, 0, len(sorted))
	s.val = make([]float64, 0, len(sorted))
	// Single pass over the sorted run: coincident coordinates are merged
	// by summation, exact zeros are dropped, and row end offsets are
	// recorded as each row's run closes.
	for k := 0; k < len(sorted); {
		t := sorted[k]
		v := t.Val
		k++
		for k < len(sorted) && sorted[k].Row == t.Row && sorted[k].Col == t.Col {
			v += sorted[k].Val
			k++
		}
		if v == 0 {
			continue
		}
		s.colIdx = append(s.colIdx, t.Col)
		s.val = append(s.val, v)
		s.rowPtr[t.Row+1] = len(s.val)
	}
	// rowPtr currently holds end offsets only for rows that had entries;
	// propagate so that rowPtr is non-decreasing.
	for i := 1; i <= rows; i++ {
		if s.rowPtr[i] < s.rowPtr[i-1] {
			s.rowPtr[i] = s.rowPtr[i-1]
		}
	}
	return s
}

// SparseFromRows builds a CSR matrix where row i contains the given
// (column, value) pairs. Columns within each row need not be sorted.
func SparseFromRows(cols int, rows [][]Triplet) *Sparse {
	var entries []Triplet
	for i, r := range rows {
		for _, t := range r {
			entries = append(entries, Triplet{Row: i, Col: t.Col, Val: t.Val})
		}
	}
	return NewSparse(len(rows), cols, entries)
}

// SparseFromDense converts a dense matrix to CSR, dropping zeros.
func SparseFromDense(d *Dense) *Sparse {
	var entries []Triplet
	r, c := d.Dims()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if v := d.At(i, j); v != 0 {
				entries = append(entries, Triplet{Row: i, Col: j, Val: v})
			}
		}
	}
	return NewSparse(r, c, entries)
}

// Dims returns the matrix dimensions.
func (s *Sparse) Dims() (int, int) { return s.rows, s.cols }

// NNZ returns the number of stored nonzero entries.
func (s *Sparse) NNZ() int { return len(s.val) }

// MatVec computes dst = S*x in O(nnz), splitting the CSR rows across the
// engine's goroutines when there is enough work.
func (s *Sparse) MatVec(dst, x []float64) {
	checkMatVec(s, dst, x)
	if parallelizable(len(s.val)) {
		t := newTask()
		t.fn, t.m, t.dst, t.x = sparseMatVecKernel, s, dst, x
		parRun(t, s.rows, grainRows(s.avgRowNNZ()))
		t.release()
		return
	}
	sparseMatVecRange(s, dst, x, 0, s.rows)
}

func sparseMatVecKernel(t *task, _, lo, hi int) {
	sparseMatVecRange(t.m.(*Sparse), t.dst, t.x, lo, hi)
}

func sparseMatVecRange(s *Sparse, dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var acc float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc += s.val[k] * x[s.colIdx[k]]
		}
		dst[i] = acc
	}
}

// TMatVec computes dst = Sᵀ*x in O(nnz). The parallel path splits the
// rows across workers, each scattering into a private accumulator that
// the engine merges into dst, so no two goroutines write one column.
func (s *Sparse) TMatVec(dst, x []float64) {
	checkTMatVec(s, dst, x)
	// Merging costs workers·cols adds; only profitable when the scatter
	// work clearly dominates it.
	if parallelizable(len(s.val)) && len(s.val) >= 4*s.cols {
		t := newTask()
		t.fn, t.m, t.dst, t.x = sparseTMatVecKernel, s, dst, x
		t.auxLen = s.cols
		parRun(t, s.rows, grainRows(s.avgRowNNZ()))
		t.release()
		return
	}
	for j := range dst {
		dst[j] = 0
	}
	sparseTMatVecRange(s, dst, x, 0, s.rows)
}

func sparseTMatVecKernel(t *task, worker, lo, hi int) {
	buf := t.dst
	if worker > 0 {
		buf = t.aux[worker-1]
	}
	sparseTMatVecRange(t.m.(*Sparse), buf, t.x, lo, hi)
}

// sparseTMatVecRange accumulates rows [lo, hi) of Sᵀx into dst, which
// the caller must have zeroed.
func sparseTMatVecRange(s *Sparse, dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			dst[s.colIdx[k]] += xi * s.val[k]
		}
	}
}

// MatMat computes the panel product dst = S·X (X cols×k). Each stored
// entry is loaded once and feeds a contiguous k-wide multiply-add, so the
// CSR traversal cost is amortized over the whole panel.
func (s *Sparse) MatMat(dst, x []float64, k int) {
	checkMatMat(s, dst, x, k)
	if parallelizable(len(s.val) * k) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.k = sparseMatMatKernel, s, dst, x, k
		parRun(t, s.rows, grainRows(s.avgRowNNZ()*k))
		t.release()
		return
	}
	sparseMatMatRange(s, dst, x, k, 0, s.rows)
}

func sparseMatMatKernel(t *task, _, lo, hi int) {
	sparseMatMatRange(t.m.(*Sparse), t.dst, t.x, t.k, lo, hi)
}

func sparseMatMatRange(s *Sparse, dst, x []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		o := dst[i*k : (i+1)*k]
		for t := range o {
			o[t] = 0
		}
		for kk := s.rowPtr[i]; kk < s.rowPtr[i+1]; kk++ {
			v := s.val[kk]
			xr := x[s.colIdx[kk]*k : (s.colIdx[kk]+1)*k]
			for t, xv := range xr {
				o[t] += v * xv
			}
		}
	}
}

// TMatMat computes dst = Sᵀ·X (X rows×k). The scatter of the transpose
// becomes a contiguous k-wide axpy per stored entry; the parallel path
// gives each worker a private cols×k accumulator panel.
func (s *Sparse) TMatMat(dst, x []float64, k int) {
	checkTMatMat(s, dst, x, k)
	if parallelizable(len(s.val)*k) && len(s.val) >= 4*s.cols {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.k = sparseTMatMatKernel, s, dst, x, k
		t.auxLen = s.cols * k
		parRun(t, s.rows, grainRows(s.avgRowNNZ()*k))
		t.release()
		return
	}
	for j := range dst {
		dst[j] = 0
	}
	sparseTMatMatRange(s, dst, x, k, 0, s.rows)
}

func sparseTMatMatKernel(t *task, worker, lo, hi int) {
	buf := t.dst
	if worker > 0 {
		buf = t.aux[worker-1]
	}
	sparseTMatMatRange(t.m.(*Sparse), buf, t.x, t.k, lo, hi)
}

// sparseTMatMatRange accumulates rows [lo, hi) of Sᵀ·X into dst, which
// the caller must have zeroed.
func sparseTMatMatRange(s *Sparse, dst, x []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		xr := x[i*k : (i+1)*k]
		for kk := s.rowPtr[i]; kk < s.rowPtr[i+1]; kk++ {
			v := s.val[kk]
			o := dst[s.colIdx[kk]*k : (s.colIdx[kk]+1)*k]
			for t := range o {
				o[t] += v * xr[t]
			}
		}
	}
}

func (s *Sparse) avgRowNNZ() int {
	if s.rows == 0 {
		return 1
	}
	return len(s.val)/s.rows + 1
}

// Abs returns the element-wise absolute value, preserving sparsity.
func (s *Sparse) Abs() Matrix { return s.mapVals(math.Abs) }

// Sqr returns the element-wise square, preserving sparsity.
func (s *Sparse) Sqr() Matrix { return s.mapVals(func(v float64) float64 { return v * v }) }

func (s *Sparse) mapVals(f func(float64) float64) *Sparse {
	out := &Sparse{rows: s.rows, cols: s.cols,
		rowPtr: append([]int(nil), s.rowPtr...),
		colIdx: append([]int(nil), s.colIdx...),
		val:    make([]float64, len(s.val)),
	}
	for i, v := range s.val {
		out.val[i] = f(v)
	}
	return out
}

// Transposed returns an explicit CSR transpose of s.
func (s *Sparse) Transposed() *Sparse {
	var entries []Triplet
	for i := 0; i < s.rows; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			entries = append(entries, Triplet{Row: s.colIdx[k], Col: i, Val: s.val[k]})
		}
	}
	return NewSparse(s.cols, s.rows, entries)
}

// RowNNZ returns the (column, value) pairs of row i.
func (s *Sparse) RowNNZ(i int) ([]int, []float64) {
	return s.colIdx[s.rowPtr[i]:s.rowPtr[i+1]], s.val[s.rowPtr[i]:s.rowPtr[i+1]]
}
