package mat

import (
	"fmt"
	"math"
	"sort"
)

// Sparse is a compressed-sparse-row (CSR) matrix: only nonzero entries are
// stored, giving O(nnz) mat-vec cost (paper §7.2, sparse representation).
type Sparse struct {
	rows, cols int
	rowPtr     []int // len rows+1
	colIdx     []int // len nnz
	val        []float64
}

// Triplet is a single (row, col, value) coordinate entry used to build a
// Sparse matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewSparse builds a CSR matrix from coordinate triplets. Duplicate
// coordinates are summed; zero values are kept out of the structure.
func NewSparse(rows, cols int, entries []Triplet) *Sparse {
	for _, t := range entries {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			panic(fmt.Sprintf("mat: NewSparse entry (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols))
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	s := &Sparse{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for k := 0; k < len(sorted); {
		t := sorted[k]
		v := t.Val
		k++
		for k < len(sorted) && sorted[k].Row == t.Row && sorted[k].Col == t.Col {
			v += sorted[k].Val
			k++
		}
		if v == 0 {
			continue
		}
		s.colIdx = append(s.colIdx, t.Col)
		s.val = append(s.val, v)
		s.rowPtr[t.Row+1] = len(s.val)
	}
	// rowPtr currently holds end offsets only for rows that had entries;
	// propagate so that rowPtr is non-decreasing.
	for i := 1; i <= rows; i++ {
		if s.rowPtr[i] < s.rowPtr[i-1] {
			s.rowPtr[i] = s.rowPtr[i-1]
		}
	}
	return s
}

// SparseFromRows builds a CSR matrix where row i contains the given
// (column, value) pairs. Columns within each row need not be sorted.
func SparseFromRows(cols int, rows [][]Triplet) *Sparse {
	var entries []Triplet
	for i, r := range rows {
		for _, t := range r {
			entries = append(entries, Triplet{Row: i, Col: t.Col, Val: t.Val})
		}
	}
	return NewSparse(len(rows), cols, entries)
}

// SparseFromDense converts a dense matrix to CSR, dropping zeros.
func SparseFromDense(d *Dense) *Sparse {
	var entries []Triplet
	r, c := d.Dims()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if v := d.At(i, j); v != 0 {
				entries = append(entries, Triplet{Row: i, Col: j, Val: v})
			}
		}
	}
	return NewSparse(r, c, entries)
}

// Dims returns the matrix dimensions.
func (s *Sparse) Dims() (int, int) { return s.rows, s.cols }

// NNZ returns the number of stored nonzero entries.
func (s *Sparse) NNZ() int { return len(s.val) }

// MatVec computes dst = S*x in O(nnz).
func (s *Sparse) MatVec(dst, x []float64) {
	checkMatVec(s, dst, x)
	for i := 0; i < s.rows; i++ {
		var acc float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc += s.val[k] * x[s.colIdx[k]]
		}
		dst[i] = acc
	}
}

// TMatVec computes dst = Sᵀ*x in O(nnz).
func (s *Sparse) TMatVec(dst, x []float64) {
	checkTMatVec(s, dst, x)
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < s.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			dst[s.colIdx[k]] += xi * s.val[k]
		}
	}
}

// Abs returns the element-wise absolute value, preserving sparsity.
func (s *Sparse) Abs() Matrix { return s.mapVals(math.Abs) }

// Sqr returns the element-wise square, preserving sparsity.
func (s *Sparse) Sqr() Matrix { return s.mapVals(func(v float64) float64 { return v * v }) }

func (s *Sparse) mapVals(f func(float64) float64) *Sparse {
	out := &Sparse{rows: s.rows, cols: s.cols,
		rowPtr: append([]int(nil), s.rowPtr...),
		colIdx: append([]int(nil), s.colIdx...),
		val:    make([]float64, len(s.val)),
	}
	for i, v := range s.val {
		out.val[i] = f(v)
	}
	return out
}

// Transposed returns an explicit CSR transpose of s.
func (s *Sparse) Transposed() *Sparse {
	var entries []Triplet
	for i := 0; i < s.rows; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			entries = append(entries, Triplet{Row: s.colIdx[k], Col: i, Val: s.val[k]})
		}
	}
	return NewSparse(s.cols, s.rows, entries)
}

// RowNNZ returns the (column, value) pairs of row i.
func (s *Sparse) RowNNZ(i int) ([]int, []float64) {
	return s.colIdx[s.rowPtr[i]:s.rowPtr[i+1]], s.val[s.rowPtr[i]:s.rowPtr[i+1]]
}
