package mat

import (
	"sync"
	"testing"

	"repro/internal/vec"
)

// TestConcurrentMatVec exercises the documented contract that matrices
// are immutable after construction and MatVec/TMatVec may run
// concurrently. Run with -race to catch violations.
func TestConcurrentMatVec(t *testing.T) {
	mats := []Matrix{
		Identity(64),
		Prefix(64),
		Wavelet(64),
		VStack(Identity(64), RangeQueries(64, HierarchicalRanges(64, 2))),
		Kron(Prefix(8), Identity(8)),
		NewSparse(4, 64, []Triplet{{Row: 0, Col: 0, Val: 1}, {Row: 3, Col: 63, Val: 2}}),
	}
	for _, m := range mats {
		m := m
		r, c := m.Dims()
		x := make([]float64, c)
		for i := range x {
			x[i] = float64(i)
		}
		want := Mul(m, x)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dst := make([]float64, r)
				for k := 0; k < 50; k++ {
					m.MatVec(dst, x)
					if !vec.AllClose(dst, want, 1e-12, 1e-12) {
						t.Error("concurrent MatVec produced different result")
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

func TestConcurrentSensitivity(t *testing.T) {
	m := VStack(Identity(128), RangeQueries(128, HierarchicalRanges(128, 2)))
	want := L1Sensitivity(m)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := L1Sensitivity(m); got != want {
				t.Errorf("concurrent sensitivity %v != %v", got, want)
			}
		}()
	}
	wg.Wait()
}
