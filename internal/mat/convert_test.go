package mat

import (
	"testing"
)

func TestToSparseMatchesImplicit(t *testing.T) {
	cases := map[string]Matrix{
		"identity": Identity(6),
		"diag":     Diag([]float64{1, 0, -2}),
		"ones":     Ones(3, 4),
		"ranges":   RangeQueries(8, []Range1D{{Lo: 0, Hi: 7}, {Lo: 2, Hi: 3}}),
		"vstack":   VStack(Identity(5), Total(5)),
		"scaled":   Scaled(2.5, Identity(4)),
		"rowscale": RowScaled([]float64{1, 2, 3}, Ones(3, 2)),
		"kron":     Kron(Identity(2), RangeQueries(3, []Range1D{{Lo: 0, Hi: 2}})),
		"transp":   T(Prefix(4)),
		"ndrange": NDRangeQueries([]int{3, 3}, []RangeND{
			{Lo: []int{0, 0}, Hi: []int{2, 2}},
			{Lo: []int{1, 1}, Hi: []int{1, 2}},
		}),
	}
	for name, m := range cases {
		s, ok := ToSparse(m, 0)
		if !ok {
			t.Errorf("%s: conversion refused", name)
			continue
		}
		if !Equal(s, m, 1e-12) {
			t.Errorf("%s: sparse conversion differs from implicit", name)
		}
	}
}

func TestToSparseRespectsBudget(t *testing.T) {
	m := Ones(100, 100)
	if _, ok := ToSparse(m, 50); ok {
		t.Fatal("budget ignored")
	}
	if _, ok := ToSparse(m, 10000); !ok {
		t.Fatal("within-budget conversion refused")
	}
}

func TestToSparseUnsupportedType(t *testing.T) {
	// Wavelet has no efficient explicit sparse structure.
	if _, ok := ToSparse(Wavelet(8), 0); ok {
		t.Fatal("wavelet conversion unexpectedly supported")
	}
}

func TestToSparseHierarchy(t *testing.T) {
	// The H2-style union used by the scalability experiments.
	n := 16
	m := VStack(Identity(n), RangeQueries(n, HierarchicalRanges(n, 2)))
	s, ok := ToSparse(m, 0)
	if !ok {
		t.Fatal("hierarchy conversion refused")
	}
	if !Equal(s, m, 1e-12) {
		t.Fatal("hierarchy conversion mismatch")
	}
	// nnz = n (identity) + sum of internal node widths.
	wantNNZ := n
	for _, r := range HierarchicalRanges(n, 2) {
		wantNNZ += r.Size()
	}
	if s.NNZ() != wantNNZ {
		t.Fatalf("nnz = %d, want %d", s.NNZ(), wantNNZ)
	}
}
