//go:build !race

package mat

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
