package mat

import (
	"math/rand/v2"
	"testing"
)

// randomNDRanges draws m random axis-aligned boxes over shape.
func randomNDRanges(shape []int, m int, rng *rand.Rand) []RangeND {
	out := make([]RangeND, m)
	for i := range out {
		lo := make([]int, len(shape))
		hi := make([]int, len(shape))
		for k, s := range shape {
			a, b := rng.IntN(s), rng.IntN(s)
			if a > b {
				a, b = b, a
			}
			lo[k], hi[k] = a, b
		}
		out[i] = RangeND{Lo: lo, Hi: hi}
	}
	return out
}

// TestRangeGramParallelMatchesSerial pins the engine-parallel suffix
// passes of rangeGram against the serial path: the per-cell addition
// order is unchanged by the row/column splits, so the results must be
// bit-identical — for 1-D domains (row-axis passes span the whole
// array), multi-dimensional domains (both pass kinds at several
// strides), and shapes large enough to clear the engine threshold.
func TestRangeGramParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	rng := rand.New(rand.NewPCG(42, 43))
	shapes := [][]int{
		{256},
		{16, 16},
		{8, 8, 4},
		{4, 8, 2}, // below the parallel threshold: serial on both sides
	}
	for _, shape := range shapes {
		rq := NDRangeQueries(shape, randomNDRanges(shape, 40, rng))
		SetParallelism(1)
		want := Gram(rq)
		SetParallelism(4)
		got := Gram(rq)
		r, c := want.Dims()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("shape %v: G[%d,%d] = %v parallel, %v serial", shape, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// TestSuffixAxisParFallbacks exercises the geometry guards directly:
// a stride that does not divide the row length must fall back to the
// serial pass and still produce correct suffix sums.
func TestSuffixAxisParFallbacks(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	n := 210 // size*stride = 20 does not divide n, forcing the serial fallback
	x := make([]float64, n*n)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := range x {
		x[i] = rng.Float64()
	}
	want := append([]float64(nil), x...)
	suffixAxis(want, 4, 5)
	suffixAxisPar(x, 4, 5, n)
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("fallback mismatch at %d", i)
		}
	}
}

func BenchmarkRangeGramSuffix(b *testing.B) {
	shape := []int{64, 32}
	rng := rand.New(rand.NewPCG(11, 12))
	rq := NDRangeQueries(shape, randomNDRanges(shape, 256, rng))
	for _, par := range []int{1, 4} {
		b.Run(map[int]string{1: "par1", 4: "par4"}[par], func(b *testing.B) {
			SetParallelism(par)
			defer SetParallelism(0)
			for i := 0; i < b.N; i++ {
				_ = Gram(rq)
			}
		})
	}
}
