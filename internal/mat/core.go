package mat

import "fmt"

// This file defines the core implicit matrices of paper §7.4: Identity,
// Ones (with the Total special case), Prefix, Suffix and Wavelet. Each
// stores O(1) state and implements mat-vec in the cost reported in paper
// Table 2.

// IdentityMat is the n×n identity, stored as just its size.
type IdentityMat struct{ n int }

// Identity returns the n×n identity matrix.
func Identity(n int) *IdentityMat {
	if n < 0 {
		panic("mat: Identity negative size")
	}
	return &IdentityMat{n: n}
}

// Dims returns (n, n).
func (m *IdentityMat) Dims() (int, int) { return m.n, m.n }

// MatVec copies x into dst.
func (m *IdentityMat) MatVec(dst, x []float64) {
	checkMatVec(m, dst, x)
	copy(dst, x)
}

// TMatVec copies x into dst (the identity is symmetric).
func (m *IdentityMat) TMatVec(dst, x []float64) {
	checkTMatVec(m, dst, x)
	copy(dst, x)
}

// MatMat copies the panel (identity on every column).
func (m *IdentityMat) MatMat(dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	copy(dst, x)
}

// TMatMat copies the panel.
func (m *IdentityMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	copy(dst, x)
}

// Abs returns the identity itself (a no-op, paper §7.4).
func (m *IdentityMat) Abs() Matrix { return m }

// Sqr returns the identity itself (a no-op).
func (m *IdentityMat) Sqr() Matrix { return m }

// OnesMat is the m×n all-ones matrix stored as its dimensions.
type OnesMat struct{ r, c int }

// Ones returns the rows×cols matrix of all ones.
func Ones(rows, cols int) *OnesMat {
	if rows < 0 || cols < 0 {
		panic("mat: Ones negative size")
	}
	return &OnesMat{r: rows, c: cols}
}

// Total returns the 1×n all-ones matrix, the query that sums the whole
// data vector (paper §7.4: Total is the m=1 special case of Ones).
func Total(n int) *OnesMat { return Ones(1, n) }

// Dims returns the matrix dimensions.
func (m *OnesMat) Dims() (int, int) { return m.r, m.c }

// MatVec sets every entry of dst to sum(x), in O(m+n).
func (m *OnesMat) MatVec(dst, x []float64) {
	checkMatVec(m, dst, x)
	var s float64
	for _, v := range x {
		s += v
	}
	for i := range dst {
		dst[i] = s
	}
}

// TMatVec sets every entry of dst to sum(x).
func (m *OnesMat) TMatVec(dst, x []float64) {
	checkTMatVec(m, dst, x)
	var s float64
	for _, v := range x {
		s += v
	}
	for i := range dst {
		dst[i] = s
	}
}

// MatMat broadcasts the per-column sums of the panel to every output row.
func (m *OnesMat) MatMat(dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	onesPanel(dst, x, k)
}

// TMatMat broadcasts the per-column sums of the panel.
func (m *OnesMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	onesPanel(dst, x, k)
}

// onesPanel sets every row of dst to the column sums of x.
func onesPanel(dst, x []float64, k int) {
	s := getScratch(k)
	for t := range s.buf {
		s.buf[t] = 0
	}
	for i := 0; i+k <= len(x); i += k {
		xr := x[i : i+k]
		for t, v := range xr {
			s.buf[t] += v
		}
	}
	for i := 0; i+k <= len(dst); i += k {
		copy(dst[i:i+k], s.buf)
	}
	s.put()
}

// Abs is a no-op for the all-ones matrix.
func (m *OnesMat) Abs() Matrix { return m }

// Sqr is a no-op for the all-ones matrix.
func (m *OnesMat) Sqr() Matrix { return m }

// PrefixMat is the n×n lower-triangular all-ones matrix encoding the
// empirical CDF (paper Example 7.1). Mat-vec runs in O(n) with O(1) state.
type PrefixMat struct{ n int }

// Prefix returns the n×n prefix-sum (lower-triangular ones) matrix.
func Prefix(n int) *PrefixMat {
	if n < 0 {
		panic("mat: Prefix negative size")
	}
	return &PrefixMat{n: n}
}

// Dims returns (n, n).
func (m *PrefixMat) Dims() (int, int) { return m.n, m.n }

// MatVec computes running prefix sums: dst[k] = x[0]+...+x[k].
func (m *PrefixMat) MatVec(dst, x []float64) {
	checkMatVec(m, dst, x)
	var acc float64
	for i, v := range x {
		acc += v
		dst[i] = acc
	}
}

// TMatVec computes suffix sums: dst[j] = x[j]+...+x[n-1], since
// Prefixᵀ = Suffix.
func (m *PrefixMat) TMatVec(dst, x []float64) {
	checkTMatVec(m, dst, x)
	var acc float64
	for i := m.n - 1; i >= 0; i-- {
		acc += x[i]
		dst[i] = acc
	}
}

// MatMat computes running prefix sums down the panel rows; the k-wide
// inner loop keeps the recurrence independent per column.
func (m *PrefixMat) MatMat(dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	prefixPanel(dst, x, m.n, k)
}

// TMatMat computes suffix sums down the panel rows (Prefixᵀ = Suffix).
func (m *PrefixMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	suffixPanel(dst, x, m.n, k)
}

// prefixPanel sets dst row i to the sum of x rows 0..i.
func prefixPanel(dst, x []float64, n, k int) {
	if n == 0 {
		return
	}
	copy(dst[:k], x[:k])
	for i := 1; i < n; i++ {
		prev := dst[(i-1)*k : i*k]
		cur := dst[i*k : (i+1)*k]
		xr := x[i*k : (i+1)*k]
		for t := range cur {
			cur[t] = prev[t] + xr[t]
		}
	}
}

// suffixPanel sets dst row i to the sum of x rows i..n-1.
func suffixPanel(dst, x []float64, n, k int) {
	if n == 0 {
		return
	}
	copy(dst[(n-1)*k:n*k], x[(n-1)*k:n*k])
	for i := n - 2; i >= 0; i-- {
		next := dst[(i+1)*k : (i+2)*k]
		cur := dst[i*k : (i+1)*k]
		xr := x[i*k : (i+1)*k]
		for t := range cur {
			cur[t] = next[t] + xr[t]
		}
	}
}

// Abs is a no-op (binary matrix).
func (m *PrefixMat) Abs() Matrix { return m }

// Sqr is a no-op (binary matrix).
func (m *PrefixMat) Sqr() Matrix { return m }

// SuffixMat is the n×n upper-triangular all-ones matrix, the transpose of
// Prefix (paper §7.4).
type SuffixMat struct{ n int }

// Suffix returns the n×n suffix-sum matrix.
func Suffix(n int) *SuffixMat {
	if n < 0 {
		panic("mat: Suffix negative size")
	}
	return &SuffixMat{n: n}
}

// Dims returns (n, n).
func (m *SuffixMat) Dims() (int, int) { return m.n, m.n }

// MatVec computes suffix sums.
func (m *SuffixMat) MatVec(dst, x []float64) {
	checkMatVec(m, dst, x)
	var acc float64
	for i := m.n - 1; i >= 0; i-- {
		acc += x[i]
		dst[i] = acc
	}
}

// TMatVec computes prefix sums (Suffixᵀ = Prefix).
func (m *SuffixMat) TMatVec(dst, x []float64) {
	checkTMatVec(m, dst, x)
	var acc float64
	for i, v := range x {
		acc += v
		dst[i] = acc
	}
}

// MatMat computes suffix sums down the panel rows.
func (m *SuffixMat) MatMat(dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	suffixPanel(dst, x, m.n, k)
}

// TMatMat computes prefix sums down the panel rows (Suffixᵀ = Prefix).
func (m *SuffixMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	prefixPanel(dst, x, m.n, k)
}

// Abs is a no-op (binary matrix).
func (m *SuffixMat) Abs() Matrix { return m }

// Sqr is a no-op (binary matrix).
func (m *SuffixMat) Sqr() Matrix { return m }

// WaveletMat is the n×n Haar wavelet transform (n a power of two) with
// averaging normalization: one stage maps (a,b) to ((a+b)/2, (a-b)/2).
// Mat-vec runs in O(n) via the fast transform; each matrix entry is the
// product of the stage coefficients along a unique averaging-tree path, so
// Abs and Sqr admit the same fast algorithm with |c| and c² stage
// coefficients (paper Table 2: O(1) space, near-linear time).
type WaveletMat struct {
	n    int
	kind waveletKind
}

type waveletKind int

const (
	waveletSigned waveletKind = iota // coefficients ±1/2
	waveletAbs                       // coefficients 1/2
	waveletSqr                       // coefficients 1/4
)

// Wavelet returns the n×n Haar wavelet transform. n must be a positive
// power of two.
func Wavelet(n int) *WaveletMat {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("mat: Wavelet size %d is not a positive power of two", n))
	}
	return &WaveletMat{n: n, kind: waveletSigned}
}

// Dims returns (n, n).
func (m *WaveletMat) Dims() (int, int) { return m.n, m.n }

// stage coefficients: forward pair (a,b) -> (ca*(a+b), cd*(a +/- b)).
func (m *WaveletMat) coeffs() (c float64, signed bool) {
	switch m.kind {
	case waveletAbs:
		return 0.5, false
	case waveletSqr:
		return 0.25, false
	default:
		return 0.5, true
	}
}

// MatVec applies the fast Haar decomposition. Output layout:
// [overall average, coarsest detail, ..., finest n/2 details].
func (m *WaveletMat) MatVec(dst, x []float64) {
	checkMatVec(m, dst, x)
	c, signed := m.coeffs()
	copy(dst, x)
	s := getScratch(m.n)
	tmp := s.buf
	for length := m.n; length > 1; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			a, b := dst[2*i], dst[2*i+1]
			tmp[i] = c * (a + b)
			if signed {
				tmp[half+i] = c * (a - b)
			} else {
				tmp[half+i] = c * (a + b)
			}
		}
		copy(dst[:length], tmp[:length])
	}
	s.put()
}

// TMatVec applies the transposed transform (the reversed composition of
// transposed stages).
func (m *WaveletMat) TMatVec(dst, x []float64) {
	checkTMatVec(m, dst, x)
	c, signed := m.coeffs()
	copy(dst, x)
	s := getScratch(m.n)
	tmp := s.buf
	for length := 2; length <= m.n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			a, d := dst[i], dst[half+i]
			if signed {
				tmp[2*i] = c * (a + d)
				tmp[2*i+1] = c * (a - d)
			} else {
				tmp[2*i] = c * (a + d)
				tmp[2*i+1] = c * (a + d)
			}
		}
		copy(dst[:length], tmp[:length])
	}
	s.put()
}

// MatMat applies the fast Haar decomposition to every panel column at
// once: the stage butterflies operate on contiguous k-wide rows.
func (m *WaveletMat) MatMat(dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	c, signed := m.coeffs()
	copy(dst, x)
	s := getScratch(m.n * k)
	tmp := s.buf
	for length := m.n; length > 1; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			a := dst[2*i*k : (2*i+1)*k]
			b := dst[(2*i+1)*k : (2*i+2)*k]
			lo := tmp[i*k : (i+1)*k]
			hi := tmp[(half+i)*k : (half+i+1)*k]
			if signed {
				for t := range a {
					lo[t] = c * (a[t] + b[t])
					hi[t] = c * (a[t] - b[t])
				}
			} else {
				for t := range a {
					v := c * (a[t] + b[t])
					lo[t] = v
					hi[t] = v
				}
			}
		}
		copy(dst[:length*k], tmp[:length*k])
	}
	s.put()
}

// TMatMat applies the transposed transform to every panel column at once.
func (m *WaveletMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	c, signed := m.coeffs()
	copy(dst, x)
	s := getScratch(m.n * k)
	tmp := s.buf
	for length := 2; length <= m.n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			a := dst[i*k : (i+1)*k]
			d := dst[(half+i)*k : (half+i+1)*k]
			even := tmp[2*i*k : (2*i+1)*k]
			odd := tmp[(2*i+1)*k : (2*i+2)*k]
			if signed {
				for t := range a {
					even[t] = c * (a[t] + d[t])
					odd[t] = c * (a[t] - d[t])
				}
			} else {
				for t := range a {
					v := c * (a[t] + d[t])
					even[t] = v
					odd[t] = v
				}
			}
		}
		copy(dst[:length*k], tmp[:length*k])
	}
	s.put()
}

// Abs returns the element-wise absolute value as another implicit wavelet.
func (m *WaveletMat) Abs() Matrix {
	if m.kind == waveletSqr {
		return m // already non-negative
	}
	return &WaveletMat{n: m.n, kind: waveletAbs}
}

// Sqr returns the element-wise square as another implicit wavelet.
func (m *WaveletMat) Sqr() Matrix {
	if m.kind == waveletSigned || m.kind == waveletAbs {
		return &WaveletMat{n: m.n, kind: waveletSqr}
	}
	// Squaring the already-squared transform would need coefficient 1/16
	// per stage; materialize for this rare case.
	return Materialize(m).Sqr()
}
