package mat

import (
	"fmt"
	"math"
)

// Dense is an explicit row-major matrix. It is the fallback representation
// and the reference implementation against which implicit matrices are
// tested.
type Dense struct {
	rows, cols int
	data       []float64 // row-major, len rows*cols
}

// NewDense returns a rows×cols dense matrix backed by data (row-major).
// If data is nil a zero matrix is allocated; otherwise len(data) must be
// rows*cols and the slice is used directly (not copied).
func NewDense(rows, cols int, data []float64) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: NewDense negative dims %dx%d", rows, cols))
	}
	if data == nil {
		data = make([]float64, rows*cols)
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: NewDense data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// DenseFromRows builds a dense matrix from a slice of equal-length rows.
func DenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0, nil)
	}
	c := len(rows[0])
	d := NewDense(len(rows), c, nil)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: DenseFromRows ragged row %d: len %d != %d", i, len(r), c))
		}
		copy(d.data[i*c:(i+1)*c], r)
	}
	return d
}

// Dims returns the matrix dimensions.
func (d *Dense) Dims() (int, int) { return d.rows, d.cols }

// At returns the element at row i, column j.
func (d *Dense) At(i, j int) float64 { return d.data[i*d.cols+j] }

// Set assigns the element at row i, column j.
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.cols+j] = v }

// RowView returns a view (not a copy) of row i.
func (d *Dense) RowView(i int) []float64 { return d.data[i*d.cols : (i+1)*d.cols] }

// Data returns the backing row-major slice (not a copy).
func (d *Dense) Data() []float64 { return d.data }

// MatVec computes dst = D*x, splitting the rows across the engine's
// goroutines when the matrix is large enough.
func (d *Dense) MatVec(dst, x []float64) {
	checkMatVec(d, dst, x)
	if parallelizable(d.rows * d.cols) {
		t := newTask()
		t.fn, t.m, t.dst, t.x = denseMatVecKernel, d, dst, x
		parRun(t, d.rows, grainRows(d.cols))
		t.release()
		return
	}
	denseMatVecRange(d, dst, x, 0, d.rows)
}

func denseMatVecKernel(t *task, _, lo, hi int) {
	denseMatVecRange(t.m.(*Dense), t.dst, t.x, lo, hi)
}

func denseMatVecRange(d *Dense, dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := d.data[i*d.cols : (i+1)*d.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// TMatVec computes dst = Dᵀ*x. The parallel path splits the rows across
// workers, each accumulating into a private buffer that the engine merges
// into dst.
func (d *Dense) TMatVec(dst, x []float64) {
	checkTMatVec(d, dst, x)
	if parallelizable(d.rows*d.cols) && d.rows >= 4 {
		t := newTask()
		t.fn, t.m, t.dst, t.x = denseTMatVecKernel, d, dst, x
		t.auxLen = d.cols
		parRun(t, d.rows, grainRows(d.cols))
		t.release()
		return
	}
	for j := range dst {
		dst[j] = 0
	}
	denseTMatVecRange(d, dst, x, 0, d.rows)
}

func denseTMatVecKernel(t *task, worker, lo, hi int) {
	buf := t.dst
	if worker > 0 {
		buf = t.aux[worker-1]
	}
	denseTMatVecRange(t.m.(*Dense), buf, t.x, lo, hi)
}

// denseTMatVecRange accumulates rows [lo, hi) of Dᵀx into dst, which the
// caller must have zeroed.
func denseTMatVecRange(d *Dense, dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := d.data[i*d.cols : (i+1)*d.cols]
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// MatMat computes the panel product dst = D·X (X cols×k row-major). Rows
// are processed four at a time so each panel row of X loaded from memory
// feeds four accumulator rows, and the inner loop is a contiguous k-wide
// multiply-add that auto-vectorizes.
func (d *Dense) MatMat(dst, x []float64, k int) {
	checkMatMat(d, dst, x, k)
	if parallelizable(d.rows * d.cols * k) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.k = denseMatMatKernel, d, dst, x, k
		parRun(t, d.rows, grainRows(d.cols*k))
		t.release()
		return
	}
	denseMatMatRange(d, dst, x, k, 0, d.rows)
}

func denseMatMatKernel(t *task, _, lo, hi int) {
	denseMatMatRange(t.m.(*Dense), t.dst, t.x, t.k, lo, hi)
}

func denseMatMatRange(d *Dense, dst, x []float64, k, lo, hi int) {
	c := d.cols
	i := lo
	for ; i+3 < hi; i += 4 {
		r0 := d.data[i*c : (i+1)*c]
		r1 := d.data[(i+1)*c : (i+2)*c]
		r2 := d.data[(i+2)*c : (i+3)*c]
		r3 := d.data[(i+3)*c : (i+4)*c]
		o0 := dst[i*k : (i+1)*k]
		o1 := dst[(i+1)*k : (i+2)*k]
		o2 := dst[(i+2)*k : (i+3)*k]
		o3 := dst[(i+3)*k : (i+4)*k]
		for t := range o0 {
			o0[t], o1[t], o2[t], o3[t] = 0, 0, 0, 0
		}
		for j := 0; j < c; j++ {
			v0, v1, v2, v3 := r0[j], r1[j], r2[j], r3[j]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			xr := x[j*k : (j+1)*k]
			for t, xv := range xr {
				o0[t] += v0 * xv
				o1[t] += v1 * xv
				o2[t] += v2 * xv
				o3[t] += v3 * xv
			}
		}
	}
	for ; i < hi; i++ {
		row := d.data[i*c : (i+1)*c]
		o := dst[i*k : (i+1)*k]
		for t := range o {
			o[t] = 0
		}
		for j, v := range row {
			if v == 0 {
				continue
			}
			xr := x[j*k : (j+1)*k]
			for t, xv := range xr {
				o[t] += v * xv
			}
		}
	}
}

// TMatMat computes dst = Dᵀ·X (X rows×k). The kernel walks four source
// rows at a time so each k-wide output row written back absorbs four
// contributions per pass; the parallel path gives each worker a private
// cols×k accumulator panel merged by the engine.
func (d *Dense) TMatMat(dst, x []float64, k int) {
	checkTMatMat(d, dst, x, k)
	if parallelizable(d.rows*d.cols*k) && d.rows >= 4 {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.k = denseTMatMatKernel, d, dst, x, k
		t.auxLen = d.cols * k
		parRun(t, d.rows, grainRows(d.cols*k))
		t.release()
		return
	}
	for j := range dst {
		dst[j] = 0
	}
	denseTMatMatRange(d, dst, x, k, 0, d.rows)
}

func denseTMatMatKernel(t *task, worker, lo, hi int) {
	buf := t.dst
	if worker > 0 {
		buf = t.aux[worker-1]
	}
	denseTMatMatRange(t.m.(*Dense), buf, t.x, t.k, lo, hi)
}

// denseTMatMatRange accumulates rows [lo, hi) of Dᵀ·X into dst, which
// the caller must have zeroed.
func denseTMatMatRange(d *Dense, dst, x []float64, k, lo, hi int) {
	c := d.cols
	i := lo
	for ; i+3 < hi; i += 4 {
		r0 := d.data[i*c : (i+1)*c]
		r1 := d.data[(i+1)*c : (i+2)*c]
		r2 := d.data[(i+2)*c : (i+3)*c]
		r3 := d.data[(i+3)*c : (i+4)*c]
		x0 := x[i*k : (i+1)*k]
		x1 := x[(i+1)*k : (i+2)*k]
		x2 := x[(i+2)*k : (i+3)*k]
		x3 := x[(i+3)*k : (i+4)*k]
		for j := 0; j < c; j++ {
			v0, v1, v2, v3 := r0[j], r1[j], r2[j], r3[j]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			o := dst[j*k : (j+1)*k]
			for t := range o {
				// Accumulate row by row (not one reassociated 4-term sum)
				// so the panel result equals k TMatVecs bit for bit — the
				// contract the batched solvers pin their columns against.
				s := o[t] + v0*x0[t]
				s += v1 * x1[t]
				s += v2 * x2[t]
				s += v3 * x3[t]
				o[t] = s
			}
		}
	}
	for ; i < hi; i++ {
		row := d.data[i*c : (i+1)*c]
		xr := x[i*k : (i+1)*k]
		for j, v := range row {
			if v == 0 {
				continue
			}
			o := dst[j*k : (j+1)*k]
			for t := range o {
				o[t] += v * xr[t]
			}
		}
	}
}

// grainRows converts the engine's per-chunk flop grain into a row count
// for kernels whose per-row cost is rowCost flops.
func grainRows(rowCost int) int {
	if rowCost <= 0 {
		return parGrain
	}
	g := parGrain / rowCost
	if g < 1 {
		g = 1
	}
	return g
}

// Abs returns the element-wise absolute value as a new dense matrix.
func (d *Dense) Abs() Matrix {
	out := NewDense(d.rows, d.cols, nil)
	for i, v := range d.data {
		out.data[i] = math.Abs(v)
	}
	return out
}

// Sqr returns the element-wise square as a new dense matrix.
func (d *Dense) Sqr() Matrix {
	out := NewDense(d.rows, d.cols, nil)
	for i, v := range d.data {
		out.data[i] = v * v
	}
	return out
}

// Clone returns a deep copy of d.
func (d *Dense) Clone() *Dense {
	data := make([]float64, len(d.data))
	copy(data, d.data)
	return NewDense(d.rows, d.cols, data)
}

// String renders small matrices for debugging.
func (d *Dense) String() string {
	if d.rows*d.cols > 400 {
		return fmt.Sprintf("Dense(%dx%d)", d.rows, d.cols)
	}
	s := ""
	for i := 0; i < d.rows; i++ {
		s += fmt.Sprintf("%6.3v\n", d.RowView(i))
	}
	return s
}
