package mat

import (
	"fmt"
	"math"
)

// Dense is an explicit row-major matrix. It is the fallback representation
// and the reference implementation against which implicit matrices are
// tested.
type Dense struct {
	rows, cols int
	data       []float64 // row-major, len rows*cols
}

// NewDense returns a rows×cols dense matrix backed by data (row-major).
// If data is nil a zero matrix is allocated; otherwise len(data) must be
// rows*cols and the slice is used directly (not copied).
func NewDense(rows, cols int, data []float64) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: NewDense negative dims %dx%d", rows, cols))
	}
	if data == nil {
		data = make([]float64, rows*cols)
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: NewDense data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// DenseFromRows builds a dense matrix from a slice of equal-length rows.
func DenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0, nil)
	}
	c := len(rows[0])
	d := NewDense(len(rows), c, nil)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: DenseFromRows ragged row %d: len %d != %d", i, len(r), c))
		}
		copy(d.data[i*c:(i+1)*c], r)
	}
	return d
}

// Dims returns the matrix dimensions.
func (d *Dense) Dims() (int, int) { return d.rows, d.cols }

// At returns the element at row i, column j.
func (d *Dense) At(i, j int) float64 { return d.data[i*d.cols+j] }

// Set assigns the element at row i, column j.
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.cols+j] = v }

// RowView returns a view (not a copy) of row i.
func (d *Dense) RowView(i int) []float64 { return d.data[i*d.cols : (i+1)*d.cols] }

// Data returns the backing row-major slice (not a copy).
func (d *Dense) Data() []float64 { return d.data }

// MatVec computes dst = D*x, splitting the rows across the engine's
// goroutines when the matrix is large enough.
func (d *Dense) MatVec(dst, x []float64) {
	checkMatVec(d, dst, x)
	if parallelizable(d.rows * d.cols) {
		t := newTask()
		t.fn, t.m, t.dst, t.x = denseMatVecKernel, d, dst, x
		parRun(t, d.rows, grainRows(d.cols))
		t.release()
		return
	}
	denseMatVecRange(d, dst, x, 0, d.rows)
}

func denseMatVecKernel(t *task, _, lo, hi int) {
	denseMatVecRange(t.m.(*Dense), t.dst, t.x, lo, hi)
}

func denseMatVecRange(d *Dense, dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := d.data[i*d.cols : (i+1)*d.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// TMatVec computes dst = Dᵀ*x. The parallel path splits the rows across
// workers, each accumulating into a private buffer that the engine merges
// into dst.
func (d *Dense) TMatVec(dst, x []float64) {
	checkTMatVec(d, dst, x)
	if parallelizable(d.rows*d.cols) && d.rows >= 4 {
		t := newTask()
		t.fn, t.m, t.dst, t.x = denseTMatVecKernel, d, dst, x
		t.auxLen = d.cols
		parRun(t, d.rows, grainRows(d.cols))
		t.release()
		return
	}
	for j := range dst {
		dst[j] = 0
	}
	denseTMatVecRange(d, dst, x, 0, d.rows)
}

func denseTMatVecKernel(t *task, worker, lo, hi int) {
	buf := t.dst
	if worker > 0 {
		buf = t.aux[worker-1]
	}
	denseTMatVecRange(t.m.(*Dense), buf, t.x, lo, hi)
}

// denseTMatVecRange accumulates rows [lo, hi) of Dᵀx into dst, which the
// caller must have zeroed.
func denseTMatVecRange(d *Dense, dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := d.data[i*d.cols : (i+1)*d.cols]
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// grainRows converts the engine's per-chunk flop grain into a row count
// for kernels whose per-row cost is rowCost flops.
func grainRows(rowCost int) int {
	if rowCost <= 0 {
		return parGrain
	}
	g := parGrain / rowCost
	if g < 1 {
		g = 1
	}
	return g
}

// Abs returns the element-wise absolute value as a new dense matrix.
func (d *Dense) Abs() Matrix {
	out := NewDense(d.rows, d.cols, nil)
	for i, v := range d.data {
		out.data[i] = math.Abs(v)
	}
	return out
}

// Sqr returns the element-wise square as a new dense matrix.
func (d *Dense) Sqr() Matrix {
	out := NewDense(d.rows, d.cols, nil)
	for i, v := range d.data {
		out.data[i] = v * v
	}
	return out
}

// Clone returns a deep copy of d.
func (d *Dense) Clone() *Dense {
	data := make([]float64, len(d.data))
	copy(data, d.data)
	return NewDense(d.rows, d.cols, data)
}

// String renders small matrices for debugging.
func (d *Dense) String() string {
	if d.rows*d.cols > 400 {
		return fmt.Sprintf("Dense(%dx%d)", d.rows, d.cols)
	}
	s := ""
	for i := 0; i < d.rows; i++ {
		s += fmt.Sprintf("%6.3v\n", d.RowView(i))
	}
	return s
}
