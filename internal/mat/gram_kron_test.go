package mat

import (
	"testing"
)

// TestDenseKronParallelMatchesSerial pins the engine-parallel Kronecker
// expansion to the serial loop bit for bit: workers own disjoint
// out-row blocks (one per a-row), so every cell is written once by the
// same multiplication either way.
func TestDenseKronParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	// 64×64 ⊗ 24×24 = 2.4M mults — far above the engine threshold.
	a := NewDense(64, 64, nil)
	for i := range a.data {
		a.data[i] = float64((i*29+7)%13) - 6
	}
	b := NewDense(24, 24, nil)
	for i := range b.data {
		b.data[i] = float64((i*17+3)%11) - 5
	}
	SetParallelism(1)
	want := denseKron(a, b)
	for _, p := range []int{2, 5} {
		SetParallelism(p)
		got := denseKron(a, b)
		if got.rows != want.rows || got.cols != want.cols {
			t.Fatalf("par %d: dims %dx%d, want %dx%d", p, got.rows, got.cols, want.rows, want.cols)
		}
		for i, v := range got.data {
			if v != want.data[i] {
				t.Fatalf("par %d: cell %d = %v, want %v (not bit-identical)", p, i, v, want.data[i])
			}
		}
	}
}

// TestGramKronParallelMatchesSerial covers the caller: the
// Gram(A⊗B) = Gram(A)⊗Gram(B) fast path through the parallel expansion.
func TestGramKronParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	m := Kron(Prefix(48), Prefix(40))
	SetParallelism(1)
	want := Gram(m)
	SetParallelism(4)
	got := Gram(m)
	for i, v := range got.data {
		if v != want.data[i] {
			t.Fatalf("cell %d = %v, want %v", i, v, want.data[i])
		}
	}
}
