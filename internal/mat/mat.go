// Package mat implements the implicit-matrix framework of EKTELO §7.
//
// A Matrix is a linear operator defined by the five primitive methods the
// paper identifies: matrix-vector product, transpose (via TMatVec),
// matrix multiplication (via Product), element-wise absolute value and
// element-wise square (via the optional Abser/Sqrer interfaces, with a
// materializing fallback). Core matrices (Identity, Ones, Total, Prefix,
// Suffix, Wavelet) are stored implicitly in O(1) space; combinators
// (VStack/union, Product, Kronecker) delegate to their children so that
// composed matrices inherit the children's cost model (paper Tables 2, 3).
//
// # Compute engine
//
// The data-parallel matrices — Dense (row blocks), Sparse (CSR row
// blocks; transpose via per-worker accumulators), VStack (block
// parallel) and Kronecker (outer-factor blocks) — execute large mat-vecs
// on a shared goroutine engine configured with SetParallelism (default
// runtime.GOMAXPROCS). Below a work threshold kernels stay on their
// serial loops, so small matrices pay no coordination cost; nested
// parallelism degrades to serial instead of deadlocking. The practical
// cost model therefore refines the paper's Tables 2-3 to
// Time(M)/min(P, blocks) plus an O(P·cols) merge for transpose
// accumulation.
//
// # Multi-RHS (MatMat) tier
//
// MatMat/TMatMat evaluate a matrix against a row-major panel of k
// right-hand sides in one traversal of the representation (see
// matmat.go for the layout). Dense and CSR have cache-tiled kernels
// whose inner loops are contiguous k-wide multiply-adds with four-wide
// row blocking, structured so the compiler auto-vectorizes them;
// combinators distribute the panel to their children; everything else
// falls back to k pooled MatVecs. Batched callers (blocked Gram,
// Materialize, solver.CGLSMulti, HDMM scoring) therefore pay
// Time(M)·k flops but only one pass of memory traffic over M.
//
// The engine picks the blocked parallel path exactly as for MatVec —
// estimated flops (now ×k) above the 2^15 threshold and parallelism
// above one — so small panels keep their serial allocation-free loops.
//
// # Allocation discipline
//
// Steady-state MatVec/TMatVec and MatMat/TMatMat perform zero heap
// allocations for every matrix in the package: combinator temporaries
// come from an internal sync.Pool, and the engine's dispatch path is
// allocation-free by construction. Callers that run solver-style loops
// can additionally reuse their own buffers across calls through the
// explicit Workspace free-list (a nil *Workspace falls back to plain
// allocation).
//
// Gram computes MᵀM with structure-aware fast paths — Gram(A⊗B) =
// Gram(A)⊗Gram(B), blocked symmetric Dense/CSR kernels routed through
// the parallel engine with per-worker partial Grams, VStack block sums,
// and the Bᵀ·Gram(A)·B sandwich for CSR-led products — bypassing the
// generic cols·matvec construction wherever the operand shape allows
// (see gram.go for the blocked kernels' cost model). GramInto reuses a
// caller-provided output for allocation-free steady state on Dense and
// CSR.
package mat

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Matrix is an implicitly represented linear operator.
//
// Implementations must treat the receiver as immutable: MatVec and TMatVec
// may be called concurrently.
type Matrix interface {
	// Dims returns the number of rows and columns.
	Dims() (rows, cols int)
	// MatVec computes dst = M*x. len(x) must equal cols and len(dst) rows.
	MatVec(dst, x []float64)
	// TMatVec computes dst = Mᵀ*x. len(x) must equal rows and len(dst) cols.
	TMatVec(dst, x []float64)
}

// Abser is implemented by matrices that can produce their element-wise
// absolute value without materializing.
type Abser interface {
	Abs() Matrix
}

// Sqrer is implemented by matrices that can produce their element-wise
// square without materializing.
type Sqrer interface {
	Sqr() Matrix
}

// checkMatVec panics if the slice lengths do not match m's dimensions.
func checkMatVec(m Matrix, dst, x []float64) {
	r, c := m.Dims()
	if len(x) != c || len(dst) != r {
		panic(fmt.Sprintf("mat: MatVec dims %dx%d with len(x)=%d len(dst)=%d", r, c, len(x), len(dst)))
	}
}

// checkTMatVec panics if the slice lengths do not match mᵀ's dimensions.
func checkTMatVec(m Matrix, dst, x []float64) {
	r, c := m.Dims()
	if len(x) != r || len(dst) != c {
		panic(fmt.Sprintf("mat: TMatVec dims %dx%d with len(x)=%d len(dst)=%d", r, c, len(x), len(dst)))
	}
}

// Mul returns M*x as a newly allocated vector.
func Mul(m Matrix, x []float64) []float64 {
	r, _ := m.Dims()
	dst := make([]float64, r)
	m.MatVec(dst, x)
	return dst
}

// TMul returns Mᵀ*x as a newly allocated vector.
func TMul(m Matrix, x []float64) []float64 {
	_, c := m.Dims()
	dst := make([]float64, c)
	m.TMatVec(dst, x)
	return dst
}

// Abs returns the element-wise absolute value of m, using the implicit
// representation when m implements Abser and a dense materialization
// otherwise.
func Abs(m Matrix) Matrix {
	if a, ok := m.(Abser); ok {
		return a.Abs()
	}
	return Materialize(m).Abs()
}

// Sqr returns the element-wise square of m, using the implicit
// representation when m implements Sqrer and a dense materialization
// otherwise.
func Sqr(m Matrix) Matrix {
	if s, ok := m.(Sqrer); ok {
		return s.Sqr()
	}
	return Materialize(m).Sqr()
}

// L1Sensitivity returns ‖M‖₁, the maximum L1 column norm, computed as
// max(abs(M)ᵀ·1) using only primitive methods (paper §7.3).
func L1Sensitivity(m Matrix) float64 {
	a := Abs(m)
	r, _ := a.Dims()
	colSums := TMul(a, vec.Ones(r))
	if len(colSums) == 0 {
		return 0
	}
	return vec.Max(colSums)
}

// L2Sensitivity returns ‖M‖₂, the maximum L2 column norm, computed as
// sqrt(max(sqr(M)ᵀ·1)).
func L2Sensitivity(m Matrix) float64 {
	s := Sqr(m)
	r, _ := s.Dims()
	colSums := TMul(s, vec.Ones(r))
	if len(colSums) == 0 {
		return 0
	}
	return math.Sqrt(max(0, vec.Max(colSums)))
}

// Row materializes the i-th row of m as wᵢ = Mᵀeᵢ (paper §7.3, row indexing).
func Row(m Matrix, i int) []float64 {
	r, _ := m.Dims()
	if i < 0 || i >= r {
		panic(fmt.Sprintf("mat: Row index %d out of range [0,%d)", i, r))
	}
	return TMul(m, vec.Basis(r, i))
}

// materializePanel is the basis-panel width Materialize extracts with:
// wide enough to amortize each matrix traversal over many columns,
// narrow enough that the k-wide kernel rows stay in L1.
const materializePanel = 32

// Materialize converts m into an explicit dense matrix using only the
// primitive methods (paper §7.3, materialize), evaluated panel-wise
// through the batched MatMat tier: M·E for basis panels E of up to
// materializePanel columns when the matrix is at least as tall as wide
// (each panel is one pass over M's representation instead of one per
// column), and Mᵀ·E row-basis panels otherwise. Intended for tests and
// small matrices only.
func Materialize(m Matrix) *Dense {
	r, c := m.Dims()
	d := NewDense(r, c, nil)
	if r == 0 || c == 0 {
		return d
	}
	if r < c {
		// Row extraction: Mᵀ applied to panels of row basis vectors.
		for i0 := 0; i0 < r; i0 += materializePanel {
			k := min(materializePanel, r-i0)
			e := getScratch(r * k)
			vec.Zero(e.buf)
			for q := 0; q < k; q++ {
				e.buf[(i0+q)*k+q] = 1
			}
			p := getScratch(c * k) // p[j*k+q] = M[i0+q][j]
			TMatMat(m, p.buf, e.buf, k)
			for q := 0; q < k; q++ {
				row := d.data[(i0+q)*c : (i0+q+1)*c]
				for j := range row {
					row[j] = p.buf[j*k+q]
				}
			}
			e.put()
			p.put()
		}
		return d
	}
	// Column extraction: M applied to panels of column basis vectors,
	// copied into the row-major backing slice segment by segment.
	for j0 := 0; j0 < c; j0 += materializePanel {
		k := min(materializePanel, c-j0)
		e := getScratch(c * k)
		vec.Zero(e.buf)
		for q := 0; q < k; q++ {
			e.buf[(j0+q)*k+q] = 1
		}
		p := getScratch(r * k)
		MatMat(m, p.buf, e.buf, k)
		for i := 0; i < r; i++ {
			copy(d.data[i*c+j0:i*c+j0+k], p.buf[i*k:(i+1)*k])
		}
		e.put()
		p.put()
	}
	return d
}

// Equal reports whether a and b have the same dimensions and materialize to
// element-wise equal matrices within tolerance tol. Intended for tests.
func Equal(a, b Matrix, tol float64) bool {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		return false
	}
	da, db := Materialize(a), Materialize(b)
	return vec.AllClose(da.data, db.data, 0, tol)
}
