// Package mat implements the implicit-matrix framework of EKTELO §7.
//
// A Matrix is a linear operator defined by the five primitive methods the
// paper identifies: matrix-vector product, transpose (via TMatVec),
// matrix multiplication (via Product), element-wise absolute value and
// element-wise square (via the optional Abser/Sqrer interfaces, with a
// materializing fallback). Core matrices (Identity, Ones, Total, Prefix,
// Suffix, Wavelet) are stored implicitly in O(1) space; combinators
// (VStack/union, Product, Kronecker) delegate to their children so that
// composed matrices inherit the children's cost model (paper Tables 2, 3).
package mat

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Matrix is an implicitly represented linear operator.
//
// Implementations must treat the receiver as immutable: MatVec and TMatVec
// may be called concurrently.
type Matrix interface {
	// Dims returns the number of rows and columns.
	Dims() (rows, cols int)
	// MatVec computes dst = M*x. len(x) must equal cols and len(dst) rows.
	MatVec(dst, x []float64)
	// TMatVec computes dst = Mᵀ*x. len(x) must equal rows and len(dst) cols.
	TMatVec(dst, x []float64)
}

// Abser is implemented by matrices that can produce their element-wise
// absolute value without materializing.
type Abser interface {
	Abs() Matrix
}

// Sqrer is implemented by matrices that can produce their element-wise
// square without materializing.
type Sqrer interface {
	Sqr() Matrix
}

// checkMatVec panics if the slice lengths do not match m's dimensions.
func checkMatVec(m Matrix, dst, x []float64) {
	r, c := m.Dims()
	if len(x) != c || len(dst) != r {
		panic(fmt.Sprintf("mat: MatVec dims %dx%d with len(x)=%d len(dst)=%d", r, c, len(x), len(dst)))
	}
}

// checkTMatVec panics if the slice lengths do not match mᵀ's dimensions.
func checkTMatVec(m Matrix, dst, x []float64) {
	r, c := m.Dims()
	if len(x) != r || len(dst) != c {
		panic(fmt.Sprintf("mat: TMatVec dims %dx%d with len(x)=%d len(dst)=%d", r, c, len(x), len(dst)))
	}
}

// Mul returns M*x as a newly allocated vector.
func Mul(m Matrix, x []float64) []float64 {
	r, _ := m.Dims()
	dst := make([]float64, r)
	m.MatVec(dst, x)
	return dst
}

// TMul returns Mᵀ*x as a newly allocated vector.
func TMul(m Matrix, x []float64) []float64 {
	_, c := m.Dims()
	dst := make([]float64, c)
	m.TMatVec(dst, x)
	return dst
}

// Abs returns the element-wise absolute value of m, using the implicit
// representation when m implements Abser and a dense materialization
// otherwise.
func Abs(m Matrix) Matrix {
	if a, ok := m.(Abser); ok {
		return a.Abs()
	}
	return Materialize(m).Abs()
}

// Sqr returns the element-wise square of m, using the implicit
// representation when m implements Sqrer and a dense materialization
// otherwise.
func Sqr(m Matrix) Matrix {
	if s, ok := m.(Sqrer); ok {
		return s.Sqr()
	}
	return Materialize(m).Sqr()
}

// L1Sensitivity returns ‖M‖₁, the maximum L1 column norm, computed as
// max(abs(M)ᵀ·1) using only primitive methods (paper §7.3).
func L1Sensitivity(m Matrix) float64 {
	a := Abs(m)
	r, _ := a.Dims()
	colSums := TMul(a, vec.Ones(r))
	if len(colSums) == 0 {
		return 0
	}
	return vec.Max(colSums)
}

// L2Sensitivity returns ‖M‖₂, the maximum L2 column norm, computed as
// sqrt(max(sqr(M)ᵀ·1)).
func L2Sensitivity(m Matrix) float64 {
	s := Sqr(m)
	r, _ := s.Dims()
	colSums := TMul(s, vec.Ones(r))
	if len(colSums) == 0 {
		return 0
	}
	return math.Sqrt(max(0, vec.Max(colSums)))
}

// Row materializes the i-th row of m as wᵢ = Mᵀeᵢ (paper §7.3, row indexing).
func Row(m Matrix, i int) []float64 {
	r, _ := m.Dims()
	if i < 0 || i >= r {
		panic(fmt.Sprintf("mat: Row index %d out of range [0,%d)", i, r))
	}
	return TMul(m, vec.Basis(r, i))
}

// Materialize converts m into an explicit dense matrix by multiplying with
// the columns of the identity (paper §7.3, materialize). Intended for tests
// and small matrices only.
func Materialize(m Matrix) *Dense {
	r, c := m.Dims()
	d := NewDense(r, c, nil)
	x := make([]float64, c)
	col := make([]float64, r)
	for j := 0; j < c; j++ {
		x[j] = 1
		m.MatVec(col, x)
		x[j] = 0
		for i := 0; i < r; i++ {
			d.data[i*c+j] = col[i]
		}
	}
	return d
}

// Gram returns MᵀM as a dense matrix. It requires c mat-vec products and a
// transpose mat-vec each, so it is intended for modest column counts.
func Gram(m Matrix) *Dense {
	_, c := m.Dims()
	g := NewDense(c, c, nil)
	ej := make([]float64, c)
	r, _ := m.Dims()
	tmp := make([]float64, r)
	col := make([]float64, c)
	for j := 0; j < c; j++ {
		ej[j] = 1
		m.MatVec(tmp, ej)
		m.TMatVec(col, tmp)
		ej[j] = 0
		copy(g.data[j*c:(j+1)*c], col)
	}
	return g
}

// Equal reports whether a and b have the same dimensions and materialize to
// element-wise equal matrices within tolerance tol. Intended for tests.
func Equal(a, b Matrix, tol float64) bool {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		return false
	}
	da, db := Materialize(a), Materialize(b)
	return vec.AllClose(da.data, db.data, 0, tol)
}
