package mat

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestRangeQueriesMatchPaperExample(t *testing.T) {
	// Paper Example 7.4: four range queries over a domain of size five.
	ranges := []Range1D{{1, 3}, {3, 4}, {0, 3}, {1, 1}}
	m := RangeQueries(5, ranges)
	want := DenseFromRows([][]float64{
		{0, 1, 1, 1, 0},
		{0, 0, 0, 1, 1},
		{1, 1, 1, 1, 0},
		{0, 1, 0, 0, 0},
	})
	if !Equal(m, want, 1e-12) {
		t.Fatalf("range queries materialize to\n%v", Materialize(m))
	}
}

func TestRangeQueriesEvaluate(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	m := RangeQueries(5, []Range1D{{0, 4}, {2, 2}, {1, 3}})
	got := Mul(m, x)
	want := []float64{15, 3, 9}
	if !vec.AllClose(got, want, 1e-12, 1e-12) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestRangeQueriesAbsSqrNoOps(t *testing.T) {
	m := RangeQueries(6, []Range1D{{0, 2}, {3, 5}})
	if Abs(m) != Matrix(m) || Sqr(m) != Matrix(m) {
		t.Fatal("range-query abs/sqr should be identity (binary matrix)")
	}
	// And they must still equal the dense abs.
	if !Equal(Abs(m), Materialize(m).Abs(), 1e-12) {
		t.Fatal("abs mismatch")
	}
}

func TestRangeQueriesSensitivity(t *testing.T) {
	// Disjoint ranges: each cell in at most one query => sensitivity 1.
	m := RangeQueries(8, []Range1D{{0, 3}, {4, 7}})
	if got := L1Sensitivity(m); got != 1 {
		t.Fatalf("disjoint range sensitivity = %v, want 1", got)
	}
	// Nested ranges covering cell 0 three times.
	m2 := RangeQueries(8, []Range1D{{0, 7}, {0, 3}, {0, 0}})
	if got := L1Sensitivity(m2); got != 3 {
		t.Fatalf("nested range sensitivity = %v, want 3", got)
	}
}

func TestNDRangeQueries2D(t *testing.T) {
	// 3x4 grid, row-major x.
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i + 1)
	}
	m := NDRangeQueries([]int{3, 4}, []RangeND{
		{Lo: []int{0, 0}, Hi: []int{2, 3}}, // whole grid
		{Lo: []int{1, 1}, Hi: []int{2, 2}}, // interior box
		{Lo: []int{0, 0}, Hi: []int{0, 0}}, // single cell
	})
	got := Mul(m, x)
	want := []float64{78, 6 + 7 + 10 + 11, 1}
	if !vec.AllClose(got, want, 1e-12, 1e-12) {
		t.Fatalf("2-D ranges = %v, want %v", got, want)
	}
}

// TestNDRangeQueriesQuick property-tests box evaluation against a brute-
// force loop over the grid.
func TestNDRangeQueriesQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		h, w := 1+rng.IntN(5), 1+rng.IntN(5)
		x := make([]float64, h*w)
		for i := range x {
			x[i] = float64(rng.IntN(10))
		}
		y1, y2 := rng.IntN(h), rng.IntN(h)
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		x1, x2 := rng.IntN(w), rng.IntN(w)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		m := NDRangeQueries([]int{h, w}, []RangeND{{Lo: []int{y1, x1}, Hi: []int{y2, x2}}})
		got := Mul(m, x)[0]
		var want float64
		for i := y1; i <= y2; i++ {
			for j := x1; j <= x2; j++ {
				want += x[i*w+j]
			}
		}
		return got == want || (got-want) < 1e-9 && (want-got) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalRangesBinary(t *testing.T) {
	ranges := HierarchicalRanges(8, 2)
	// Internal nodes of a complete binary tree over 8 leaves: 1+2+4 = 7.
	if len(ranges) != 7 {
		t.Fatalf("got %d internal ranges, want 7: %v", len(ranges), ranges)
	}
	if ranges[0] != (Range1D{Lo: 0, Hi: 7}) {
		t.Fatalf("root = %v", ranges[0])
	}
	// Every range must be a valid sub-interval and children must tile
	// their parent (checked by total coverage per level).
	for _, r := range ranges {
		if r.Lo < 0 || r.Hi > 7 || r.Lo > r.Hi {
			t.Fatalf("invalid range %v", r)
		}
	}
}

func TestHierarchicalRangesNonPowerDomain(t *testing.T) {
	ranges := HierarchicalRanges(10, 3)
	for _, r := range ranges {
		if r.Lo < 0 || r.Hi > 9 || r.Lo > r.Hi {
			t.Fatalf("invalid range %v", r)
		}
	}
	// The root must cover the whole domain.
	if ranges[0] != (Range1D{Lo: 0, Hi: 9}) {
		t.Fatalf("root = %v", ranges[0])
	}
}

func TestRangeQueriesAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	var ranges []Range1D
	for i := 0; i < 10; i++ {
		a, b := rng.IntN(12), rng.IntN(12)
		if a > b {
			a, b = b, a
		}
		ranges = append(ranges, Range1D{a, b})
	}
	checkAgainstDense(t, RangeQueries(12, ranges), 4)
}
