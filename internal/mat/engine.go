package mat

// This file implements the shared parallel compute engine behind the
// data-parallel mat-vec kernels (Dense, Sparse, VStack, Kronecker). The
// paper's cost model (§7, Tables 2-3) counts mat-vec work; the engine
// divides that work across goroutines without allocating on the steady
// state:
//
//   - A fixed crew of helper goroutines is spawned lazily and parked on
//     a wake channel; per-call coordination is a token send plus an
//     atomic work-stealing cursor, none of which allocates.
//   - Kernel invocations are described by pooled *task values whose
//     function field is a top-level func (no closure capture), so a
//     steady-state MatVec performs zero heap allocations even on the
//     parallel path.
//   - Nested parallelism is impossible by construction: the engine is
//     guarded by a TryLock, so a kernel that re-enters the engine from a
//     worker (e.g. a VStack block whose child is a large Dense) simply
//     runs serially instead of deadlocking.
//
// Parallelism is configured process-wide with SetParallelism; the
// default is runtime.GOMAXPROCS(0). Matrices whose estimated mat-vec
// work falls below parMinWork never touch the engine and keep their
// allocation-free serial loops.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/vec"
)

// parMinWork is the minimum estimated flop count before a kernel
// considers going parallel; below it, goroutine coordination costs more
// than the work saved.
const parMinWork = 1 << 15

// parGrain is the minimum estimated flop count handed out per
// work-stealing chunk.
const parGrain = 1 << 14

// maxHelpers bounds the helper crew (and must not exceed the wake
// channel capacity).
const maxHelpers = 64

var parallelism atomic.Int32

// SetParallelism sets the number of goroutines (including the caller)
// used for large mat-vec products. n <= 0 restores the default,
// runtime.GOMAXPROCS(0). It may be called at any time, including
// concurrently with mat-vecs in flight.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the current mat-vec parallelism setting.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// parallelizable reports whether a kernel with the given estimated flop
// count should attempt the parallel path.
func parallelizable(work int) bool {
	return work >= parMinWork && Parallelism() > 1
}

// task describes one data-parallel kernel invocation. The fields cover
// the needs of every kernel in the package; unused fields stay nil.
// Tasks are pooled so that steady-state dispatch allocates nothing, and
// fn is always a top-level function to avoid closure allocations.
type task struct {
	fn     func(t *task, worker, lo, hi int)
	m      Matrix      // operand matrix
	dst, x []float64   // output and input vectors
	z      []float64   // intermediate buffer (Kronecker two-phase)
	aux    [][]float64 // per-helper accumulators; helper w uses aux[w-1]
	auxLen int         // live length of each accumulator (0: no merge)
	k      int         // panel width for multi-RHS (MatMat) kernels
	args   [3]int      // extra integer parameters (suffix-pass geometry)
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

func newTask() *task { return taskPool.Get().(*task) }

// release clears the task's references (keeping the accumulator backing
// arrays for reuse) and returns it to the pool.
func (t *task) release() {
	t.fn, t.m, t.dst, t.x, t.z = nil, nil, nil, nil, nil
	t.auxLen = 0
	t.k = 0
	t.args = [3]int{}
	taskPool.Put(t)
}

// engine owns the helper crew. All per-run state is written by the
// dispatching goroutine before the wake tokens are sent, which
// establishes the happens-before edge the helpers rely on.
type engine struct {
	mu      sync.Mutex
	helpers int
	wake    chan struct{}
	done    sync.WaitGroup
	t       *task
	next    atomic.Int64
	limit   int64
	chunk   int64
	slots   atomic.Int32
	// trap holds the first panic recovered on a helper so parRun can
	// re-raise it on the calling goroutine instead of killing the
	// process.
	trap atomic.Pointer[panicValue]
}

type panicValue struct{ v any }

var eng = engine{wake: make(chan struct{}, maxHelpers)}

// parRun executes t.fn over [0, n) with chunks of at least grain units,
// using up to Parallelism() goroutines. If the engine is busy (including
// the nested case where parRun is re-entered from a helper), or the
// range is too small to split, the kernel runs serially on the calling
// goroutine as worker 0.
func parRun(t *task, n, grain int) {
	if grain < 1 {
		grain = 1
	}
	p := Parallelism()
	if w := n / grain; w < p {
		p = w
	}
	if p <= 1 || !eng.mu.TryLock() {
		runSerial(t, n)
		return
	}
	// Even if worker 0's kernel panics, the helpers must drain before the
	// engine state is released for the next run, so the Wait precedes the
	// Unlock in the deferred path too (Wait is a no-op when the normal
	// path already waited).
	defer func() {
		eng.done.Wait()
		eng.mu.Unlock()
	}()
	if p > maxHelpers+1 {
		p = maxHelpers + 1
	}
	eng.ensureHelpers(p - 1)
	if t.auxLen > 0 {
		t.ensureAux(p-1, t.auxLen)
		vec.Zero(t.dst)
	}
	chunk := n / (4 * p)
	if chunk < grain {
		chunk = grain
	}
	eng.t = t
	eng.limit = int64(n)
	eng.chunk = int64(chunk)
	eng.next.Store(0)
	eng.slots.Store(1) // the caller is worker 0
	eng.trap.Store(nil)
	eng.done.Add(p - 1)
	for i := 0; i < p-1; i++ {
		eng.wake <- struct{}{}
	}
	eng.steal(t, 0)
	eng.done.Wait()
	if pv := eng.trap.Load(); pv != nil {
		panic(pv.v)
	}
	if t.auxLen > 0 {
		for w := 0; w < p-1; w++ {
			vec.Axpy(1, t.aux[w], t.dst)
		}
	}
}

// runSerial executes the whole range on the calling goroutine.
func runSerial(t *task, n int) {
	if t.auxLen > 0 {
		vec.Zero(t.dst)
	}
	t.fn(t, 0, 0, n)
}

// ensureHelpers grows the parked helper crew to at least n goroutines.
func (e *engine) ensureHelpers(n int) {
	for e.helpers < n {
		go e.helperLoop()
		e.helpers++
	}
}

func (e *engine) helperLoop() {
	for range e.wake {
		e.helpOnce()
	}
}

// helpOnce runs one wake cycle. A panicking kernel is trapped and
// re-raised from parRun on the dispatching goroutine (a helper panic
// would otherwise kill the process, where the serial path would have
// let the caller recover); the remaining chunks are picked up by the
// other workers through the shared cursor.
func (e *engine) helpOnce() {
	defer e.done.Done()
	defer func() {
		if r := recover(); r != nil {
			e.trap.CompareAndSwap(nil, &panicValue{v: r})
		}
	}()
	t := e.t
	w := int(e.slots.Add(1)) - 1
	if t.auxLen > 0 && w-1 < len(t.aux) {
		vec.Zero(t.aux[w-1])
	}
	e.steal(t, w)
}

// steal claims chunks off the shared cursor until the range is
// exhausted.
func (e *engine) steal(t *task, worker int) {
	for {
		lo := e.next.Add(e.chunk) - e.chunk
		if lo >= e.limit {
			return
		}
		hi := lo + e.chunk
		if hi > e.limit {
			hi = e.limit
		}
		t.fn(t, worker, int(lo), int(hi))
	}
}

// ensureAux sizes n accumulators of length ln each, reusing the task's
// retained backing arrays. Helpers zero their own accumulator on wake.
func (t *task) ensureAux(n, ln int) {
	for len(t.aux) < n {
		t.aux = append(t.aux, nil)
	}
	for i := 0; i < n; i++ {
		if cap(t.aux[i]) < ln {
			t.aux[i] = make([]float64, ln)
		} else {
			t.aux[i] = t.aux[i][:ln]
		}
	}
	t.auxLen = ln
}
