package mat_test

import (
	"fmt"

	"repro/internal/mat"
)

// ExampleKron reproduces the paper's Example 7.3: a workload over a
// multi-attribute domain built from implicit factors, whose dense form
// would need gigabytes.
func ExampleKron() {
	// Range queries on two 100-bucket attributes, broken down by a
	// 7-value categorical attribute (plus its total).
	w := mat.Kron(
		mat.Prefix(100),
		mat.Prefix(100),
		mat.VStack(mat.Total(7), mat.Identity(7)),
	)
	rows, cols := w.Dims()
	fmt.Printf("workload: %d queries over %d cells (stored implicitly)\n", rows, cols)
	// Output: workload: 80000 queries over 70000 cells (stored implicitly)
}

// ExampleL1Sensitivity shows the automatic sensitivity computation that
// calibrates every Laplace measurement.
func ExampleL1Sensitivity() {
	// A binary hierarchy over 8 cells: each cell appears once per level.
	h2 := mat.VStack(mat.Identity(8), mat.RangeQueries(8, mat.HierarchicalRanges(8, 2)))
	fmt.Printf("sensitivity: %.0f\n", mat.L1Sensitivity(h2))
	// Output: sensitivity: 4
}

// ExampleRangeQueries shows the implicit range-query construction of
// the paper's Example 7.4.
func ExampleRangeQueries() {
	w := mat.RangeQueries(5, []mat.Range1D{{Lo: 1, Hi: 3}, {Lo: 0, Hi: 4}})
	x := []float64{1, 2, 3, 4, 5}
	answers := mat.Mul(w, x)
	fmt.Printf("answers: %.0f %.0f\n", answers[0], answers[1])
	// Output: answers: 9 15
}
