package mat

import (
	"sync"
	"testing"

	"repro/internal/vec"
)

// largeMats builds one matrix per parallel kernel family, each big
// enough (≥ parMinWork estimated flops) to take the engine path.
func largeMats() map[string]Matrix {
	n := 1 << 9 // dense/sparse: 512×512; combinators scale up from this
	dense := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dense.Set(i, j, float64((i*31+j*17)%7)-3)
		}
	}
	var tri []Triplet
	for i := 0; i < 4*n; i++ {
		for k := 0; k < 8; k++ {
			tri = append(tri, Triplet{Row: i, Col: (i*13 + k*k*5) % n, Val: float64(k%3 - 1)})
		}
	}
	// Enough stacked blocks that the VStack transpose clears its
	// merge-cost guard and actually takes the accumulator path.
	vn := 1 << 15
	vblocks := []Matrix{Identity(vn), RangeQueries(vn, HierarchicalRanges(vn, 2))}
	for i := 0; i < 8; i++ {
		vblocks = append(vblocks, Prefix(vn))
	}
	return map[string]Matrix{
		"dense":  dense,
		"sparse": NewSparse(4*n, n, tri),
		"vstack": VStack(vblocks...),
		"kron":   Kron(Prefix(256), Wavelet(256)),
	}
}

// TestParallelMatVecMatchesSerial pins the engine output to the serial
// kernels for every parallel kernel family, in both directions.
func TestParallelMatVecMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	for name, m := range largeMats() {
		r, c := m.Dims()
		x := make([]float64, c)
		for i := range x {
			x[i] = float64(i%11) - 5
		}
		xt := make([]float64, r)
		for i := range xt {
			xt[i] = float64(i%7) - 3
		}
		SetParallelism(1)
		wantMV := Mul(m, x)
		wantTMV := TMul(m, xt)
		for _, p := range []int{2, 3, 8} {
			SetParallelism(p)
			gotMV := Mul(m, x)
			gotTMV := TMul(m, xt)
			if !vec.AllClose(gotMV, wantMV, 1e-12, 1e-12) {
				t.Errorf("%s: parallel(%d) MatVec differs from serial", name, p)
			}
			if !vec.AllClose(gotTMV, wantTMV, 1e-12, 1e-12) {
				t.Errorf("%s: parallel(%d) TMatVec differs from serial", name, p)
			}
		}
	}
}

// TestMatVecZeroAllocs asserts the satellite requirement: steady-state
// MatVec/TMatVec on Dense, Sparse, VStack and Kron perform zero heap
// allocations, on the serial path and through the parallel engine.
func TestMatVecZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache under the race detector")
	}
	defer SetParallelism(0)
	for _, par := range []int{1, 4} {
		SetParallelism(par)
		for name, m := range largeMats() {
			r, c := m.Dims()
			x := make([]float64, c)
			dst := make([]float64, r)
			xt := make([]float64, r)
			dstT := make([]float64, c)
			// Warm the scratch and task pools.
			for i := 0; i < 3; i++ {
				m.MatVec(dst, x)
				m.TMatVec(dstT, xt)
			}
			if a := testing.AllocsPerRun(20, func() { m.MatVec(dst, x) }); a != 0 {
				t.Errorf("%s p=%d: MatVec allocates %.1f/op, want 0", name, par, a)
			}
			if a := testing.AllocsPerRun(20, func() { m.TMatVec(dstT, xt) }); a != 0 {
				t.Errorf("%s p=%d: TMatVec allocates %.1f/op, want 0", name, par, a)
			}
		}
	}
}

// TestConcurrentEngineMatVec drives many concurrent large mat-vecs
// through the engine (run with -race in CI). Concurrent callers that
// find the engine busy must degrade to the serial path and still produce
// identical results.
func TestConcurrentEngineMatVec(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	for name, m := range largeMats() {
		r, c := m.Dims()
		x := make([]float64, c)
		for i := range x {
			x[i] = float64(i%13) - 6
		}
		want := Mul(m, x)
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dst := make([]float64, r)
				for k := 0; k < 10; k++ {
					m.MatVec(dst, x)
					if !vec.AllClose(dst, want, 1e-12, 1e-12) {
						t.Errorf("%s: concurrent engine MatVec diverged", name)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// panicMat panics on every mat-vec; it stands in for a buggy external
// Matrix implementation running under the engine.
type panicMat struct{ n int }

func (p panicMat) Dims() (int, int)         { return p.n, p.n }
func (p panicMat) MatVec(dst, x []float64)  { panic("panicMat: MatVec") }
func (p panicMat) TMatVec(dst, x []float64) { panic("panicMat: TMatVec") }

// TestEnginePanicPropagates checks that a kernel panicking on an engine
// worker reaches the calling goroutine as a panic (not a process crash)
// and leaves the engine usable for the next run.
func TestEnginePanicPropagates(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	n := 1 << 15
	bad := VStack(panicMat{n: n}, Identity(n), Prefix(n))
	x := make([]float64, n)
	dst := make([]float64, 3*n)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic from engine run")
			}
		}()
		bad.MatVec(dst, x)
	}()
	// The engine must be fully drained and reusable.
	good := VStack(Identity(n), Prefix(n), Suffix(n))
	for i := range x {
		x[i] = float64(i % 9)
	}
	SetParallelism(1)
	want := Mul(good, x)
	SetParallelism(4)
	if !vec.AllClose(Mul(good, x), want, 1e-12, 1e-12) {
		t.Error("engine produced wrong results after trapped panic")
	}
}

// TestSetParallelism checks the setter contract: positive values stick,
// non-positive values restore the GOMAXPROCS default.
func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", got)
	}
	SetParallelism(-5)
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-5), want default", got)
	}
}

// TestWorkspaceReuse checks the Get/Put free-list contract, including
// the nil-workspace convenience behavior.
func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	b1 := ws.Get(64)
	ws.Put(b1)
	b2 := ws.Get(32)
	if &b1[0] != &b2[0] {
		t.Error("workspace did not reuse the returned buffer")
	}
	ws.Put(b2)
	if a := testing.AllocsPerRun(50, func() { ws.Put(ws.Get(64)) }); a != 0 {
		t.Errorf("steady-state workspace Get/Put allocates %.1f/op", a)
	}
	var nilWS *Workspace
	b := nilWS.Get(16)
	if len(b) != 16 {
		t.Fatalf("nil workspace Get returned len %d", len(b))
	}
	nilWS.Put(b) // must not panic
	if z := nilWS.GetZero(8); len(z) != 8 {
		t.Fatalf("nil workspace GetZero returned len %d", len(z))
	}
}

// TestGramFastPaths pins every structure-aware Gram path to the generic
// mat-vec implementation.
func TestGramFastPaths(t *testing.T) {
	rng := testRand()
	sp := NewSparse(6, 5, []Triplet{
		{Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 3, Val: -1},
		{Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 4},
		{Row: 3, Col: 4, Val: -2}, {Row: 4, Col: 0, Val: 1},
		{Row: 5, Col: 3, Val: 3},
	})
	dense := NewDense(4, 3, nil)
	for i := range dense.data {
		dense.data[i] = rng.Float64()*4 - 2
	}
	cases := map[string]Matrix{
		"identity":  Identity(5),
		"diag":      Diag([]float64{1, -2, 0.5}),
		"scaled":    Scaled(-1.5, Prefix(6)),
		"sparse":    sp,
		"dense":     dense,
		"vstack":    VStack(Identity(5), sp, Total(5)),
		"kron":      Kron(Prefix(3), sp),
		"kron3":     Kron(Identity(2), Prefix(3), Total(4)),
		"transpose": T(dense),
	}
	for name, m := range cases {
		got := Gram(m)
		want := GramColumns(m)
		if !Equal(got, want, 1e-10) {
			t.Errorf("Gram(%s) fast path disagrees with generic:\ngot\n%v\nwant\n%v", name, got, want)
		}
	}
}

// TestMaterializeWideMatrix exercises the row-extraction path (rows <
// cols) against the column path.
func TestMaterializeWideMatrix(t *testing.T) {
	m := Ones(2, 9)
	d := Materialize(m)
	r, c := d.Dims()
	if r != 2 || c != 9 {
		t.Fatalf("dims %dx%d", r, c)
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if d.At(i, j) != 1 {
				t.Fatalf("at(%d,%d) = %v", i, j, d.At(i, j))
			}
		}
	}
	// A non-symmetric implicit matrix where row and column paths must
	// agree element-wise.
	sp := NewSparse(3, 8, []Triplet{{Row: 0, Col: 7, Val: 2}, {Row: 2, Col: 1, Val: -3}})
	wide := Materialize(sp)
	tall := Materialize(T(sp))
	for i := 0; i < 3; i++ {
		for j := 0; j < 8; j++ {
			if wide.At(i, j) != tall.At(j, i) {
				t.Fatalf("materialize mismatch at (%d,%d)", i, j)
			}
		}
	}
}
