package mat

import "fmt"

// This file implements the range-query matrix construction of paper
// Example 7.4: any workload of (multi-dimensional) range queries is
// represented implicitly as Sparse·(Prefix⊗...⊗Prefix), where the sparse
// factor has at most 2^d entries per row, giving O(n+m) mat-vec.

// Range1D is an inclusive interval [Lo, Hi] over a 1-D domain.
type Range1D struct{ Lo, Hi int }

// Contains reports whether index i falls inside the range.
func (r Range1D) Contains(i int) bool { return i >= r.Lo && i <= r.Hi }

// Size returns the number of cells covered by the range.
func (r Range1D) Size() int { return r.Hi - r.Lo + 1 }

// RangeQueriesMat represents a workload of range queries implicitly as the
// binary product of a ±1 sparse matrix and (a Kronecker product of) Prefix
// matrices. Abs and Sqr are no-ops because the materialized matrix is 0/1.
type RangeQueriesMat struct {
	shape  []int     // per-dimension domain sizes
	ranges []RangeND // the query boxes
	inner  *ProductMat
}

// RangeND is an axis-aligned inclusive box over a multi-dimensional
// domain; Lo and Hi have one entry per dimension.
type RangeND struct{ Lo, Hi []int }

// RangeQueries returns the implicit matrix of 1-D range queries over a
// domain of size n.
func RangeQueries(n int, ranges []Range1D) *RangeQueriesMat {
	nd := make([]RangeND, len(ranges))
	for i, r := range ranges {
		nd[i] = RangeND{Lo: []int{r.Lo}, Hi: []int{r.Hi}}
	}
	return NDRangeQueries([]int{n}, nd)
}

// NDRangeQueries returns the implicit matrix of axis-aligned box queries
// over the multi-dimensional domain with the given shape.
func NDRangeQueries(shape []int, ranges []RangeND) *RangeQueriesMat {
	d := len(shape)
	if d == 0 {
		panic("mat: NDRangeQueries empty shape")
	}
	n := 1
	strides := make([]int, d)
	for k := d - 1; k >= 0; k-- {
		strides[k] = n
		n *= shape[k]
	}
	prefixes := make([]Matrix, d)
	for k := 0; k < d; k++ {
		prefixes[k] = Prefix(shape[k])
	}
	var entries []Triplet
	for qi, r := range ranges {
		if len(r.Lo) != d || len(r.Hi) != d {
			panic(fmt.Sprintf("mat: NDRangeQueries range %d has %d dims, want %d", qi, len(r.Lo), d))
		}
		for k := 0; k < d; k++ {
			if r.Lo[k] < 0 || r.Hi[k] >= shape[k] || r.Lo[k] > r.Hi[k] {
				panic(fmt.Sprintf("mat: NDRangeQueries range %d dim %d [%d,%d] outside [0,%d)", qi, k, r.Lo[k], r.Hi[k], shape[k]))
			}
		}
		// Inclusion-exclusion over the 2^d corners of the box: the count of
		// the box equals Σ (-1)^{#low-sides} · PrefixCount(corner), skipping
		// corners where any low side is -1.
		for mask := 0; mask < 1<<d; mask++ {
			idx, sign, valid := 0, 1.0, true
			for k := 0; k < d; k++ {
				if mask&(1<<k) != 0 { // low side: index Lo[k]-1
					if r.Lo[k] == 0 {
						valid = false
						break
					}
					idx += (r.Lo[k] - 1) * strides[k]
					sign = -sign
				} else {
					idx += r.Hi[k] * strides[k]
				}
			}
			if valid {
				entries = append(entries, Triplet{Row: qi, Col: idx, Val: sign})
			}
		}
	}
	sparse := NewSparse(len(ranges), n, entries)
	inner := BinaryProduct(sparse, Kron(prefixes...))
	return &RangeQueriesMat{shape: append([]int(nil), shape...), ranges: ranges, inner: inner}
}

// Dims returns (number of ranges, domain size).
func (m *RangeQueriesMat) Dims() (int, int) { return m.inner.Dims() }

// MatVec evaluates the range queries against x in O(n·d + m·2^d).
func (m *RangeQueriesMat) MatVec(dst, x []float64) { m.inner.MatVec(dst, x) }

// TMatVec evaluates the transpose.
func (m *RangeQueriesMat) TMatVec(dst, x []float64) { m.inner.TMatVec(dst, x) }

// MatMat evaluates the range queries against a whole panel at once.
func (m *RangeQueriesMat) MatMat(dst, x []float64, k int) { m.inner.MatMat(dst, x, k) }

// TMatMat evaluates the transpose against a whole panel at once.
func (m *RangeQueriesMat) TMatMat(dst, x []float64, k int) { m.inner.TMatMat(dst, x, k) }

// Abs is a no-op: the materialized matrix is 0/1.
func (m *RangeQueriesMat) Abs() Matrix { return m }

// Sqr is a no-op: the materialized matrix is 0/1.
func (m *RangeQueriesMat) Sqr() Matrix { return m }

// Shape returns the per-dimension domain sizes.
func (m *RangeQueriesMat) Shape() []int { return m.shape }

// Ranges returns the query boxes backing the matrix.
func (m *RangeQueriesMat) Ranges() []RangeND { return m.ranges }

// Ranges1D returns the query boxes as 1-D intervals. It panics if the
// matrix is not one-dimensional.
func (m *RangeQueriesMat) Ranges1D() []Range1D {
	if len(m.shape) != 1 {
		panic("mat: Ranges1D on multi-dimensional range matrix")
	}
	out := make([]Range1D, len(m.ranges))
	for i, r := range m.ranges {
		out[i] = Range1D{Lo: r.Lo[0], Hi: r.Hi[0]}
	}
	return out
}

// HierarchicalRanges returns the ranges of a b-ary aggregation tree over
// [0, n): the root, then each level's blocks, down to blocks of size > 1.
// Leaves (unit-length ranges) are excluded; hierarchical strategies union
// this matrix with Identity (paper §7.5).
func HierarchicalRanges(n, branching int) []Range1D {
	if branching < 2 {
		panic("mat: HierarchicalRanges branching must be >= 2")
	}
	var out []Range1D
	level := []Range1D{{Lo: 0, Hi: n - 1}}
	for len(level) > 0 {
		var next []Range1D
		for _, r := range level {
			if r.Size() <= 1 {
				continue
			}
			out = append(out, r)
			// Split r into `branching` nearly equal children.
			size := r.Size()
			base := size / branching
			rem := size % branching
			lo := r.Lo
			for c := 0; c < branching && lo <= r.Hi; c++ {
				sz := base
				if c < rem {
					sz++
				}
				if sz == 0 {
					continue
				}
				next = append(next, Range1D{Lo: lo, Hi: lo + sz - 1})
				lo += sz
			}
		}
		level = next
	}
	return out
}
