package mat

import (
	"math"
	"math/rand/v2"
	"testing"
)

// gramUpdateRandDense builds a random dense matrix with a sprinkle of
// exact zeros, so the update kernels' zero-quad skips get exercised.
func gramUpdateRandDense(rng *rand.Rand, rows, cols int) *Dense {
	d := NewDense(rows, cols, nil)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.IntN(4) == 0 {
				continue
			}
			d.Set(i, j, rng.Float64()*4-2)
		}
	}
	return d
}

// gramUpdateRandSparse builds a random CSR matrix over the same shape.
func gramUpdateRandSparse(rng *rand.Rand, rows, cols int) *Sparse {
	var tri []Triplet
	for i := 0; i < rows; i++ {
		for q := 0; q < 1+rng.IntN(4); q++ {
			tri = append(tri, Triplet{Row: i, Col: rng.IntN(cols), Val: rng.Float64()*4 - 2})
		}
	}
	return NewSparse(rows, cols, tri)
}

// denseRowBlock copies rows [lo, hi) of d into a standalone matrix.
func denseRowBlock(d *Dense, lo, hi int) *Dense {
	_, cols := d.Dims()
	return NewDense(hi-lo, cols, append([]float64(nil), d.Data()[lo*cols:hi*cols]...))
}

// sparseRowBlock extracts rows [lo, hi) of s as a standalone CSR matrix
// with row indices rebased to 0.
func sparseRowBlock(s *Sparse, lo, hi int) *Sparse {
	_, cols := s.Dims()
	var tri []Triplet
	for i := lo; i < hi; i++ {
		colIdx, vals := s.RowNNZ(i)
		for j, c := range colIdx {
			tri = append(tri, Triplet{Row: i - lo, Col: c, Val: vals[j]})
		}
	}
	return NewSparse(hi-lo, cols, tri)
}

// randomRowSplits cuts [0, rows) into 1–4 contiguous chunks.
func randomRowSplits(rng *rand.Rand, rows int) []int {
	cuts := []int{0, rows}
	for n := rng.IntN(3); n > 0 && rows > 1; n-- {
		cuts = append(cuts, 1+rng.IntN(rows-1))
	}
	// Insertion-sort the handful of cut points and drop duplicates.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	out := cuts[:1]
	for _, c := range cuts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// TestGramUpdateMatchesRebuildBitIdentical is the incremental-solve
// acceptance pin, fuzzed over shapes and row splits: accumulating a
// matrix's Gram via unweighted GramUpdate calls over consecutive row
// blocks must equal the one-shot serial GramInto rebuild of the full
// matrix to the last bit, for both Dense and CSR operands.
func TestGramUpdateMatchesRebuildBitIdentical(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	rng := rand.New(rand.NewPCG(171, 173))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.IntN(200)
		cols := 1 + rng.IntN(80)
		cuts := randomRowSplits(rng, rows)

		full := gramUpdateRandDense(rng, rows, cols)
		want := GramInto(NewDense(cols, cols, nil), full)
		got := NewDense(cols, cols, nil)
		for i := 1; i < len(cuts); i++ {
			GramUpdate(got, denseRowBlock(full, cuts[i-1], cuts[i]), 1)
		}
		for i, v := range want.Data() {
			if got.Data()[i] != v {
				t.Fatalf("trial %d dense %dx%d cuts %v: cell %d: %v vs %v (not bit-identical)",
					trial, rows, cols, cuts, i, got.Data()[i], v)
			}
		}

		sp := gramUpdateRandSparse(rng, rows, cols)
		wantSp := GramInto(NewDense(cols, cols, nil), sp)
		gotSp := NewDense(cols, cols, nil)
		for i := 1; i < len(cuts); i++ {
			GramUpdate(gotSp, sparseRowBlock(sp, cuts[i-1], cuts[i]), 1)
		}
		for i, v := range wantSp.Data() {
			if gotSp.Data()[i] != v {
				t.Fatalf("trial %d sparse %dx%d cuts %v: cell %d: %v vs %v (not bit-identical)",
					trial, rows, cols, cuts, i, gotSp.Data()[i], v)
			}
		}
	}
}

// TestGramUpdateChunkScheduleInvariant pins the property the serve
// layer's warm-vs-cold bit-identity rests on: the same row blocks
// folded in one at a time versus re-accumulated all at once from
// scratch land on identical bits (the per-cell add order is the same
// either way), including with per-block weights.
func TestGramUpdateChunkScheduleInvariant(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	rng := rand.New(rand.NewPCG(177, 179))
	const cols = 33
	blocks := []Matrix{
		gramUpdateRandDense(rng, 47, cols),
		gramUpdateRandSparse(rng, 61, cols),
		gramUpdateRandDense(rng, 15, cols),
		gramUpdateRandSparse(rng, 29, cols),
	}
	weights := []float64{1, 0.25, 3.5, 0.8}

	incremental := NewDense(cols, cols, nil)
	perGen := make([]*Dense, len(blocks))
	for i, b := range blocks {
		GramUpdate(incremental, b, weights[i])
		perGen[i] = NewDense(cols, cols, append([]float64(nil), incremental.Data()...))
	}
	for gen := range blocks {
		cold := NewDense(cols, cols, nil)
		for i := 0; i <= gen; i++ {
			GramUpdate(cold, blocks[i], weights[i])
		}
		for i, v := range cold.Data() {
			if perGen[gen].Data()[i] != v {
				t.Fatalf("generation %d: incremental state diverges from cold rebuild at cell %d: %v vs %v",
					gen, i, perGen[gen].Data()[i], v)
			}
		}
	}
}

// TestGramUpdateScaledMatchesReference checks the weighted update's
// values against c²·Gram(m) to floating-point tolerance (the scaling
// reassociates one multiply, so this is a value check, not a bit pin).
func TestGramUpdateScaledMatchesReference(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	rng := rand.New(rand.NewPCG(181, 183))
	const c = 1.7
	for _, m := range []Matrix{
		gramUpdateRandDense(rng, 50, 21),
		gramUpdateRandSparse(rng, 66, 27),
		RowScaled(onesVec(35), gramUpdateRandDense(rng, 35, 13)), // default (non-kernel) path
	} {
		_, cols := m.Dims()
		got := NewDense(cols, cols, nil)
		GramUpdate(got, m, c)
		want := Gram(m)
		for i, v := range want.Data() {
			ref := c * c * v
			if d := math.Abs(got.Data()[i] - ref); d > 1e-12*(1+math.Abs(ref)) {
				t.Fatalf("cols %d: cell %d: %v vs %v", cols, i, got.Data()[i], ref)
			}
		}
	}
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// TestAddScaledTMatMatMatchesRebuild mirrors the Gram pins for the
// right-hand-side companion: chunked accumulation over row blocks must
// match the one-shot full-matrix accumulation bit for bit, and the
// values must agree with TMatMat to tolerance.
func TestAddScaledTMatMatMatchesRebuild(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	rng := rand.New(rand.NewPCG(187, 189))
	const k = 4
	for trial := 0; trial < 20; trial++ {
		rows := 2 + rng.IntN(120)
		cols := 1 + rng.IntN(50)
		y := make([]float64, rows*k)
		for i := range y {
			y[i] = rng.Float64()*10 - 5
		}
		cuts := randomRowSplits(rng, rows)

		for _, c := range []float64{1, 0.64} {
			full := gramUpdateRandDense(rng, rows, cols)
			sp := gramUpdateRandSparse(rng, rows, cols)
			for name, blocks := range map[string][]Matrix{
				"dense":  chunkDense(full, cuts),
				"sparse": chunkSparse(sp, cuts),
			} {
				var m Matrix = full
				if name == "sparse" {
					m = sp
				}
				oneShot := make([]float64, cols*k)
				AddScaledTMatMat(oneShot, m, y, k, c)
				chunked := make([]float64, cols*k)
				for i, b := range blocks {
					AddScaledTMatMat(chunked, b, y[cuts[i]*k:cuts[i+1]*k], k, c)
				}
				for i, v := range oneShot {
					if chunked[i] != v {
						t.Fatalf("trial %d %s c=%v: chunked RHS diverges at %d: %v vs %v (not bit-identical)",
							trial, name, c, i, chunked[i], v)
					}
				}
				// Value check against the plain panel product.
				ref := make([]float64, cols*k)
				TMatMat(m, ref, y, k)
				for i, v := range ref {
					want := c * v
					if d := math.Abs(oneShot[i] - want); d > 1e-11*(1+math.Abs(want)) {
						t.Fatalf("trial %d %s c=%v: value off at %d: %v vs %v", trial, name, c, i, oneShot[i], want)
					}
				}
			}
		}
	}
}

func chunkDense(d *Dense, cuts []int) []Matrix {
	out := make([]Matrix, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		out[i-1] = denseRowBlock(d, cuts[i-1], cuts[i])
	}
	return out
}

func chunkSparse(s *Sparse, cuts []int) []Matrix {
	out := make([]Matrix, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		out[i-1] = sparseRowBlock(s, cuts[i-1], cuts[i])
	}
	return out
}
