package mat

import "repro/internal/vec"

// This file computes Gram matrices G = MᵀM with structure-aware fast
// paths. The generic fallback costs cols·(Time(M) + Time(Mᵀ)); the fast
// paths exploit the combinator algebra instead:
//
//	Gram(A⊗B)   = Gram(A) ⊗ Gram(B)        (expanded densely)
//	Gram(VStack) = Σ Gram(blockᵢ)
//	Gram(c·M)    = c²·Gram(M)
//	Gram(CSR)    = row-wise outer products, O(Σ nnz(rowᵢ)²)
//	Gram(Dense)  = row-wise rank-1 updates, cache-contiguous
//
// solver.DirectLS and the strategy-scoring layers call Gram on exactly
// these shapes, so the dispatch removes the O(cols·matvec) bottleneck
// the paper's Figure 5 attributes to direct inference.

// Gram returns MᵀM as a dense matrix, dispatching to a structure-aware
// fast path when one applies.
func Gram(m Matrix) *Dense {
	switch t := m.(type) {
	case *IdentityMat:
		g := NewDense(t.n, t.n, nil)
		for i := 0; i < t.n; i++ {
			g.data[i*t.n+i] = 1
		}
		return g
	case *DiagMat:
		n := len(t.d)
		g := NewDense(n, n, nil)
		for i, v := range t.d {
			g.data[i*n+i] = v * v
		}
		return g
	case *ScaledMat:
		g := Gram(t.m)
		c2 := t.c * t.c
		for i := range g.data {
			g.data[i] *= c2
		}
		return g
	case *TransposeMat:
		// Gram(Mᵀ) = MMᵀ has no combinator shortcut; fall through to the
		// generic path unless the child is dense.
		if d, ok := t.m.(*Dense); ok {
			return denseRowGram(d)
		}
	case *Sparse:
		return sparseGram(t)
	case *Dense:
		return denseGram(t)
	case *VStackMat:
		g := Gram(t.blocks[0])
		for _, b := range t.blocks[1:] {
			gb := Gram(b)
			for i, v := range gb.data {
				g.data[i] += v
			}
		}
		return g
	case *KroneckerMat:
		return denseKron(Gram(t.a), Gram(t.b))
	}
	return gramGeneric(m)
}

// gramGeneric computes MᵀM column by column through the primitive
// methods: cols mat-vec plus transpose mat-vec pairs.
func gramGeneric(m Matrix) *Dense {
	r, c := m.Dims()
	g := NewDense(c, c, nil)
	ej := getScratch(c)
	tmp := getScratch(r)
	vec.Zero(ej.buf)
	for j := 0; j < c; j++ {
		ej.buf[j] = 1
		m.MatVec(tmp.buf, ej.buf)
		ej.buf[j] = 0
		m.TMatVec(g.data[j*c:(j+1)*c], tmp.buf)
	}
	ej.put()
	tmp.put()
	return g
}

// sparseGram computes SᵀS directly from the CSR structure: each row
// contributes the outer product of its nonzeros, O(Σ nnz(rowᵢ)²) total.
func sparseGram(s *Sparse) *Dense {
	g := NewDense(s.cols, s.cols, nil)
	for i := 0; i < s.rows; i++ {
		lo, hi := s.rowPtr[i], s.rowPtr[i+1]
		for k1 := lo; k1 < hi; k1++ {
			base := s.colIdx[k1] * s.cols
			v1 := s.val[k1]
			for k2 := lo; k2 < hi; k2++ {
				g.data[base+s.colIdx[k2]] += v1 * s.val[k2]
			}
		}
	}
	return g
}

// denseGram computes DᵀD by rank-1 row updates; every inner loop walks
// contiguous memory in both the source row and the output row.
func denseGram(d *Dense) *Dense {
	g := NewDense(d.cols, d.cols, nil)
	for i := 0; i < d.rows; i++ {
		row := d.data[i*d.cols : (i+1)*d.cols]
		for j1, v1 := range row {
			if v1 == 0 {
				continue
			}
			out := g.data[j1*d.cols : (j1+1)*d.cols]
			for j2, v2 := range row {
				out[j2] += v1 * v2
			}
		}
	}
	return g
}

// denseRowGram computes DDᵀ (the Gram of the transpose) densely.
func denseRowGram(d *Dense) *Dense {
	g := NewDense(d.rows, d.rows, nil)
	for i1 := 0; i1 < d.rows; i1++ {
		r1 := d.data[i1*d.cols : (i1+1)*d.cols]
		for i2 := i1; i2 < d.rows; i2++ {
			r2 := d.data[i2*d.cols : (i2+1)*d.cols]
			var s float64
			for j, v := range r1 {
				s += v * r2[j]
			}
			g.data[i1*d.rows+i2] = s
			g.data[i2*d.rows+i1] = s
		}
	}
	return g
}

// denseKron expands the Kronecker product of two dense matrices.
func denseKron(a, b *Dense) *Dense {
	out := NewDense(a.rows*b.rows, a.cols*b.cols, nil)
	oc := out.cols
	for i1 := 0; i1 < a.rows; i1++ {
		for j1 := 0; j1 < a.cols; j1++ {
			va := a.data[i1*a.cols+j1]
			if va == 0 {
				continue
			}
			for i2 := 0; i2 < b.rows; i2++ {
				dst := out.data[(i1*b.rows+i2)*oc+j1*b.cols:]
				src := b.data[i2*b.cols : (i2+1)*b.cols]
				for j2, vb := range src {
					dst[j2] = va * vb
				}
			}
		}
	}
	return out
}
