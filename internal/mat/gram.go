package mat

import "repro/internal/vec"

// This file computes Gram matrices G = MᵀM with structure-aware fast
// paths. The generic fallback costs cols·(Time(M) + Time(Mᵀ)); the fast
// paths exploit the combinator algebra instead:
//
//	Gram(A⊗B)    = Gram(A) ⊗ Gram(B)       (expanded densely)
//	Gram(VStack) = Σ Gram(blockᵢ)
//	Gram(c·M)    = c²·Gram(M)
//	Gram(A·B)    = Bᵀ·Gram(A)·B            (A CSR; two TMatMat panel passes)
//	Gram(CSR)    = symmetric row outer products, O(Σ nnz(rowᵢ)²/2)
//	Gram(Dense)  = blocked upper-triangular panel product (see below)
//
// # Blocked Dense/CSR kernels
//
// The Dense kernel is a blocked SYRK: rows are consumed in K-blocks
// sized to keep the operand block cache-resident (gramKB), and within a
// block the output is built four Gram rows at a time — each source row
// streamed from the block feeds four accumulator rows restricted to the
// upper triangle (j₂ ≥ j₁), an inner loop that is contiguous on every
// operand and auto-vectorizes. Compared to the row-at-a-time rank-1
// build this halves the flops (symmetry) and cuts the G traffic from
// rows·cols² to (rows/KB)·cols²/2; the lower triangle is mirrored once
// at the end. The CSR kernel applies the same symmetry: each row's
// sorted nonzeros contribute only their upper outer-product half.
//
// Both kernels run through the parallel engine when the estimated work
// clears the threshold: workers process disjoint row ranges into private
// partial Grams that the engine merges, and the mirror runs once after
// the merge. With a caller-provided output (GramInto) and warm pools the
// Dense and CSR paths perform zero steady-state heap allocations.
//
// solver.DirectLS and the strategy-scoring layers call Gram on exactly
// these shapes, so the dispatch removes the O(cols·matvec) bottleneck
// the paper's Figure 5 attributes to direct inference.

// Gram returns MᵀM as a dense matrix, dispatching to a structure-aware
// fast path when one applies.
func Gram(m Matrix) *Dense {
	switch t := m.(type) {
	case *IdentityMat:
		g := NewDense(t.n, t.n, nil)
		for i := 0; i < t.n; i++ {
			g.data[i*t.n+i] = 1
		}
		return g
	case *DiagMat:
		n := len(t.d)
		g := NewDense(n, n, nil)
		for i, v := range t.d {
			g.data[i*n+i] = v * v
		}
		return g
	case *ScaledMat:
		g := Gram(t.m)
		c2 := t.c * t.c
		for i := range g.data {
			g.data[i] *= c2
		}
		return g
	case *TransposeMat:
		// Gram(Mᵀ) = MMᵀ has no combinator shortcut; fall through to the
		// generic path unless the child is dense.
		if d, ok := t.m.(*Dense); ok {
			return denseRowGram(d)
		}
	case *Sparse:
		g := NewDense(t.cols, t.cols, nil)
		sparseGramInto(g, t)
		return g
	case *Dense:
		g := NewDense(t.cols, t.cols, nil)
		denseGramInto(g, t)
		return g
	case *VStackMat:
		g := Gram(t.blocks[0])
		for _, b := range t.blocks[1:] {
			gb := Gram(b)
			for i, v := range gb.data {
				g.data[i] += v
			}
		}
		return g
	case *KroneckerMat:
		return denseKron(Gram(t.a), Gram(t.b))
	case *RangeQueriesMat:
		return rangeGram(t)
	case *ProductMat:
		// Gram(A·B) = Bᵀ·Gram(A)·B when Gram(A) has a direct build (the
		// range-query construction: A is the sparse corner factor). The
		// sandwich costs two TMatMat panel passes over B; guard against
		// inner dimensions that would dwarf the output.
		if a, ok := t.a.(*Sparse); ok {
			_, bc := t.b.Dims()
			if a.cols <= 2*bc {
				return productGramCSR(a, t.b)
			}
		}
	}
	return GramColumns(m)
}

// GramInto computes g = mᵀm into the caller-provided cols×cols dense
// matrix, reusing its backing storage. For Dense and CSR operands the
// blocked kernels write g in place with zero steady-state allocations
// (the engine's partial-Gram accumulators are pooled); every other
// matrix type falls back to Gram and copies.
func GramInto(g *Dense, m Matrix) *Dense {
	_, c := m.Dims()
	if g.rows != c || g.cols != c {
		panic("mat: GramInto output dims mismatch")
	}
	switch t := m.(type) {
	case *Sparse:
		sparseGramInto(g, t)
	case *Dense:
		denseGramInto(g, t)
	default:
		copy(g.data, Gram(m).data)
	}
	return g
}

// GramColumns computes MᵀM column by column through the primitive
// methods: cols mat-vec plus transpose mat-vec pairs. It is the generic
// fallback and the recorded baseline the blocked kernels are benchmarked
// against (ektelo-bench -exp gram).
func GramColumns(m Matrix) *Dense {
	r, c := m.Dims()
	g := NewDense(c, c, nil)
	ej := getScratch(c)
	tmp := getScratch(r)
	vec.Zero(ej.buf)
	for j := 0; j < c; j++ {
		ej.buf[j] = 1
		m.MatVec(tmp.buf, ej.buf)
		ej.buf[j] = 0
		m.TMatVec(g.data[j*c:(j+1)*c], tmp.buf)
	}
	ej.put()
	tmp.put()
	return g
}

// gramKB returns the K-block row count for the blocked Dense kernel:
// blocks of about 256 KiB of operand rows stay cache-resident while the
// four hot Gram rows live in L1.
func gramKB(cols int) int {
	if cols <= 0 {
		return 64
	}
	kb := (1 << 15) / cols
	if kb < 8 {
		kb = 8
	}
	if kb > 256 {
		kb = 256
	}
	return kb
}

// denseGramInto computes g = dᵀd with the blocked symmetric kernel,
// parallelizing over row ranges with per-worker partial Grams.
func denseGramInto(g *Dense, d *Dense) {
	c := d.cols
	// Merging per-worker partial Grams costs workers·cols²; only go
	// parallel when the row work clearly dominates it.
	if parallelizable(d.rows*c*c/2) && d.rows >= 2*gramKB(c) && d.rows >= 8*Parallelism() {
		t := newTask()
		t.fn, t.m, t.dst = denseGramKernel, d, g.data
		t.auxLen = c * c
		parRun(t, d.rows, gramKB(c))
		t.release()
	} else {
		vec.Zero(g.data)
		denseGramRange(d, g.data, 0, d.rows)
	}
	gramMirror(g.data, c)
}

func denseGramKernel(t *task, worker, lo, hi int) {
	buf := t.dst
	if worker > 0 {
		buf = t.aux[worker-1]
	}
	denseGramRange(t.m.(*Dense), buf, lo, hi)
}

// denseGramRange accumulates the upper triangle of Σᵢ rowᵢᵀrowᵢ over
// rows [lo, hi) into g, which the caller must have zeroed. Rows are
// consumed in cache-sized K-blocks; within a block the j₁ loop is
// unrolled four wide so each streamed source row updates four Gram rows.
func denseGramRange(d *Dense, g []float64, lo, hi int) {
	c := d.cols
	if c == 0 {
		return
	}
	kb := gramKB(c)
	for bs := lo; bs < hi; bs += kb {
		be := bs + kb
		if be > hi {
			be = hi
		}
		j1 := 0
		for ; j1+3 < c; j1 += 4 {
			g0 := g[j1*c+j1 : (j1+1)*c]
			g1 := g[(j1+1)*c+j1 : (j1+2)*c]
			g2 := g[(j1+2)*c+j1 : (j1+3)*c]
			g3 := g[(j1+3)*c+j1 : (j1+4)*c]
			for r := bs; r < be; r++ {
				row := d.data[r*c : (r+1)*c]
				a0, a1, a2, a3 := row[j1], row[j1+1], row[j1+2], row[j1+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				tail := row[j1:]
				for t, v := range tail {
					g0[t] += a0 * v
					g1[t] += a1 * v
					g2[t] += a2 * v
					g3[t] += a3 * v
				}
			}
		}
		for ; j1 < c; j1++ {
			g0 := g[j1*c+j1 : (j1+1)*c]
			for r := bs; r < be; r++ {
				row := d.data[r*c : (r+1)*c]
				a0 := row[j1]
				if a0 == 0 {
					continue
				}
				tail := row[j1:]
				for t, v := range tail {
					g0[t] += a0 * v
				}
			}
		}
	}
}

// gramMirror copies the upper triangle of the n×n matrix g onto the
// lower triangle. The 4-wide quads of the blocked kernel also accumulate
// the few lower-triangle cells inside each diagonal 4×4 block; those
// carry the same value the mirror writes, so overwriting is sound.
func gramMirror(g []float64, n int) {
	for i := 0; i < n; i++ {
		row := g[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			g[j*n+i] = row[j]
		}
	}
}

// sparseGramInto computes g = sᵀs from the CSR structure: each row
// contributes the upper half of the outer product of its (sorted)
// nonzeros, O(Σ nnz(rowᵢ)²/2) total, mirrored once at the end. Large
// matrices split their rows across the engine with per-worker partial
// Grams.
func sparseGramInto(g *Dense, s *Sparse) {
	c := s.cols
	// The outer-product work is Σ nnz(rowᵢ)²/2 ≈ nnz·avg/2; merging the
	// per-worker partial Grams costs workers·cols², so the parallel path
	// must clear that bar by a wide margin to pay off.
	work := len(s.val) * s.avgRowNNZ() / 2
	if parallelizable(work) && s.rows >= 4 && work >= 4*Parallelism()*c*c {
		t := newTask()
		t.fn, t.m, t.dst = sparseGramKernel, s, g.data
		t.auxLen = c * c
		parRun(t, s.rows, grainRows(s.avgRowNNZ()*s.avgRowNNZ()/2+1))
		t.release()
	} else {
		vec.Zero(g.data)
		sparseGramRange(s, g.data, 0, s.rows)
	}
	gramMirror(g.data, c)
}

func sparseGramKernel(t *task, worker, lo, hi int) {
	buf := t.dst
	if worker > 0 {
		buf = t.aux[worker-1]
	}
	sparseGramRange(t.m.(*Sparse), buf, lo, hi)
}

// sparseGramRange accumulates the upper-triangular row outer products of
// rows [lo, hi) into g, which the caller must have zeroed. Column
// indices are sorted within each CSR row, so starting the inner loop at
// k1 touches only cells with j₂ ≥ j₁.
func sparseGramRange(s *Sparse, g []float64, lo, hi int) {
	c := s.cols
	for i := lo; i < hi; i++ {
		klo, khi := s.rowPtr[i], s.rowPtr[i+1]
		for k1 := klo; k1 < khi; k1++ {
			v1 := s.val[k1]
			grow := g[s.colIdx[k1]*c:]
			cols := s.colIdx[k1:khi]
			vals := s.val[k1:khi]
			for t, j2 := range cols {
				grow[j2] += v1 * vals[t]
			}
		}
	}
}

// productGramCSR computes Gram(A·B) = Bᵀ·Gram(A)·B for a CSR left
// factor: Gram(A) comes from the direct CSR build, then the sandwich is
// two TMatMat panel passes over B (C = Bᵀ·G_A, then Bᵀ·Cᵀ, which equals
// the symmetric result exactly because G_A is mirrored to exact
// symmetry). This is the DirectLS fast path for RangeQueriesMat
// strategies, whose implicit form is Sparse·(Prefix⊗...⊗Prefix).
func productGramCSR(a *Sparse, b Matrix) *Dense {
	as := a.cols
	_, bc := b.Dims()
	ga := Gram(a) // as×as, exactly symmetric
	cbuf := getScratch(bc * as)
	TMatMat(b, cbuf.buf, ga.data, as) // C = Bᵀ·G_A (bc×as)
	ct := getScratch(as * bc)
	transposeInto(ct.buf, cbuf.buf, bc, as)
	cbuf.put()
	g := NewDense(bc, bc, nil)
	TMatMat(b, g.data, ct.buf, bc) // Bᵀ·Cᵀ = Bᵀ·G_A·B
	ct.put()
	return g
}

// rangeGram computes the Gram of a range-query workload W = S·K (S the
// ±1 corner factor, K = Prefix⊗...⊗Prefix) without any panel algebra:
// Gram(W) = Kᵀ·(SᵀS)·K, and because every prefix-row outer product is an
// all-ones rectangle, sandwiching by K is exactly a suffix sum of SᵀS
// along each of the 2d index axes:
//
//	Gram(W)[a, b] = Σ_{i ⪰ a, j ⪰ b} (SᵀS)[i, j]   (⪰ per dimension)
//
// So the build is: scatter the corner outer products (O(m·4^d) entries)
// into the zeroed n×n output, then run 2d in-place suffix passes — each
// one streaming pass of contiguous adds over the n² cells. Total cost
// O(m·4^d + d·n²) with d·n² sequential memory traffic, versus
// O(n·(n + m·2^d)) for the column build; this is the DirectLS fast path
// for range-query strategies.
func rangeGram(rq *RangeQueriesMat) *Dense {
	s, ok := rq.inner.a.(*Sparse)
	if !ok {
		return Gram(rq.inner)
	}
	n := s.cols
	g := NewDense(n, n, nil)
	// Corner outer products: both halves, so the suffix passes see the
	// full (symmetric) SᵀS.
	for i := 0; i < s.rows; i++ {
		lo, hi := s.rowPtr[i], s.rowPtr[i+1]
		for k1 := lo; k1 < hi; k1++ {
			v1 := s.val[k1]
			grow := g.data[s.colIdx[k1]*n:]
			for k2 := lo; k2 < hi; k2++ {
				grow[s.colIdx[k2]] += v1 * s.val[k2]
			}
		}
	}
	// Suffix passes over every axis of the 2d-dimensional index space:
	// the row and column indices each decompose per dimension with
	// strides in domain cells; the flat n² array has the row axes at
	// stride·n and the column axes at stride.
	d := len(rq.shape)
	stride := 1
	for k := d - 1; k >= 0; k-- {
		suffixAxisPar(g.data, rq.shape[k], stride, n)   // column-index axis k
		suffixAxisPar(g.data, rq.shape[k], stride*n, n) // row-index axis k
		stride *= rq.shape[k]
	}
	return g
}

// suffixAxis replaces x with its suffix sums along the axis of the given
// size and stride: x[..., i, ...] += x[..., i+1, ...] from high to low.
// The inner loop is a contiguous stride-length add.
func suffixAxis(x []float64, size, stride int) {
	block := size * stride
	for base := 0; base < len(x); base += block {
		for idx := size - 2; idx >= 0; idx-- {
			cur := x[base+idx*stride : base+(idx+1)*stride]
			next := x[base+(idx+1)*stride : base+(idx+2)*stride]
			for t, v := range next {
				cur[t] += v
			}
		}
	}
}

// suffixAxisPar is suffixAxis for the n×n Gram layout, parallelized
// over independent outer blocks through the engine. The sequential
// dependency of a suffix pass runs only along the summed axis, so the
// n² cells split into independent lanes two ways:
//
//   - column-index axes (stride < n): every block lies inside one Gram
//     row (size·stride divides n), so workers take disjoint row ranges;
//   - row-index axes (stride a multiple of n): the pass adds whole
//     row-groups, so workers take disjoint column ranges, each chunk
//     still a contiguous add.
//
// Per-cell addition order is identical to the serial pass in both
// splits, so parallel results are bit-identical. Each pass is one
// streaming traversal of the n² cells; below the engine threshold the
// serial loop runs unchanged.
func suffixAxisPar(x []float64, size, stride, n int) {
	if size < 2 {
		return
	}
	if !parallelizable(len(x)) {
		suffixAxis(x, size, stride)
		return
	}
	grain := grainRows(n)
	switch {
	case stride < n && n%(size*stride) == 0:
		t := newTask()
		t.fn, t.dst = suffixColAxisKernel, x
		t.args = [3]int{size, stride, n}
		parRun(t, n, grain)
		t.release()
	case stride >= n && stride%n == 0:
		t := newTask()
		t.fn, t.dst = suffixRowAxisKernel, x
		t.args = [3]int{size, stride, n}
		parRun(t, n, grain)
		t.release()
	default:
		suffixAxis(x, size, stride)
	}
}

// suffixColAxisKernel runs a column-index-axis suffix pass over Gram
// rows [lo, hi): each row contains n/(size·stride) independent blocks.
func suffixColAxisKernel(t *task, _, lo, hi int) {
	x := t.dst
	size, stride, n := t.args[0], t.args[1], t.args[2]
	block := size * stride
	for r := lo; r < hi; r++ {
		rowEnd := (r + 1) * n
		for base := r * n; base < rowEnd; base += block {
			for idx := size - 2; idx >= 0; idx-- {
				cur := x[base+idx*stride : base+(idx+1)*stride]
				next := x[base+(idx+1)*stride : base+(idx+2)*stride]
				for t2, v := range next {
					cur[t2] += v
				}
			}
		}
	}
}

// suffixRowAxisKernel runs a row-index-axis suffix pass restricted to
// Gram columns [lo, hi): the stride is a multiple of n, so each
// stride-length segment decomposes into whole Gram rows whose [lo, hi)
// slices are updated independently of all other columns.
func suffixRowAxisKernel(t *task, _, lo, hi int) {
	x := t.dst
	size, stride, n := t.args[0], t.args[1], t.args[2]
	block := size * stride
	w := hi - lo
	for base := 0; base < len(x); base += block {
		for idx := size - 2; idx >= 0; idx-- {
			off := base + idx*stride
			for sub := 0; sub < stride; sub += n {
				cur := x[off+sub+lo : off+sub+lo+w]
				next := x[off+stride+sub+lo : off+stride+sub+lo+w]
				for t2, v := range next {
					cur[t2] += v
				}
			}
		}
	}
}

// transposeInto writes the transpose of the r×c row-major matrix src
// into dst (c×r row-major).
func transposeInto(dst, src []float64, r, c int) {
	for i := 0; i < r; i++ {
		row := src[i*c : (i+1)*c]
		for j, v := range row {
			dst[j*r+i] = v
		}
	}
}

// denseRowGram computes DDᵀ (the Gram of the transpose) densely.
func denseRowGram(d *Dense) *Dense {
	g := NewDense(d.rows, d.rows, nil)
	for i1 := 0; i1 < d.rows; i1++ {
		r1 := d.data[i1*d.cols : (i1+1)*d.cols]
		for i2 := i1; i2 < d.rows; i2++ {
			r2 := d.data[i2*d.cols : (i2+1)*d.cols]
			var s float64
			for j, v := range r1 {
				s += v * r2[j]
			}
			g.data[i1*d.rows+i2] = s
			g.data[i2*d.rows+i1] = s
		}
	}
	return g
}

// denseKron expands the Kronecker product of two dense matrices. Each
// row of a owns the disjoint out-row block [i1·b.rows, (i1+1)·b.rows),
// so the expansion splits over a's rows through the engine — every
// output cell is written exactly once by exactly one worker, making the
// parallel result bit-identical to the serial loop. This was the last
// serial streaming loop on the Gram fast path (Gram(A⊗B) expands
// Gram(A) ⊗ Gram(B) densely).
func denseKron(a, b *Dense) *Dense {
	out := NewDense(a.rows*b.rows, a.cols*b.cols, nil)
	if parallelizable(a.rows*a.cols*b.rows*b.cols) && a.rows >= 2 {
		t := newTask()
		t.fn, t.dst, t.x, t.z = denseKronKernel, out.data, a.data, b.data
		t.args = [3]int{a.cols, b.rows, b.cols}
		parRun(t, a.rows, grainRows(a.cols*b.rows*b.cols))
		t.release()
		return out
	}
	denseKronRange(out.data, a.data, b.data, a.cols, b.rows, b.cols, 0, a.rows)
	return out
}

func denseKronKernel(t *task, _, lo, hi int) {
	denseKronRange(t.dst, t.x, t.z, t.args[0], t.args[1], t.args[2], lo, hi)
}

// denseKronRange expands a-rows [lo, hi) of the Kronecker product:
// out[(i1·br+i2)·(ac·bc) + j1·bc + j2] = a[i1,j1]·b[i2,j2].
func denseKronRange(out, a, b []float64, ac, br, bc, lo, hi int) {
	oc := ac * bc
	for i1 := lo; i1 < hi; i1++ {
		for j1 := 0; j1 < ac; j1++ {
			va := a[i1*ac+j1]
			if va == 0 {
				continue
			}
			for i2 := 0; i2 < br; i2++ {
				dst := out[(i1*br+i2)*oc+j1*bc:]
				src := b[i2*bc : (i2+1)*bc]
				for j2, vb := range src {
					dst[j2] = va * vb
				}
			}
		}
	}
}
