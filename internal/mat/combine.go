package mat

import (
	"fmt"
	"math"
)

// This file implements the combining operations of paper §7.4: Union
// (vertical stacking of query sets), Product, and Kronecker product, plus
// the Transpose, Scaled and Diag helpers. Composed matrices delegate the
// primitive methods to their children and therefore inherit the children's
// space/time characteristics (paper Table 3).

// VStackMat is the vertical stacking (query-set union) of sub-matrices
// that share a column count.
type VStackMat struct {
	blocks []Matrix
	offs   []int // row offset of each block, len(blocks)+1
	rows   int
	cols   int
}

// VStack returns the union of the given query matrices: a matrix whose
// rows are the concatenated rows of the blocks. All blocks must share a
// column count.
func VStack(blocks ...Matrix) *VStackMat {
	if len(blocks) == 0 {
		panic("mat: VStack of zero blocks")
	}
	_, c := blocks[0].Dims()
	offs := make([]int, len(blocks)+1)
	rows := 0
	for i, b := range blocks {
		br, bc := b.Dims()
		if bc != c {
			panic(fmt.Sprintf("mat: VStack column mismatch %d vs %d", bc, c))
		}
		offs[i] = rows
		rows += br
	}
	offs[len(blocks)] = rows
	return &VStackMat{blocks: blocks, offs: offs, rows: rows, cols: c}
}

// Blocks returns the stacked sub-matrices.
func (m *VStackMat) Blocks() []Matrix { return m.blocks }

// Dims returns the stacked dimensions.
func (m *VStackMat) Dims() (int, int) { return m.rows, m.cols }

// MatVec evaluates each block on x into its row segment. Blocks write
// disjoint segments of dst, so the parallel path hands whole blocks to
// the engine's workers.
func (m *VStackMat) MatVec(dst, x []float64) {
	checkMatVec(m, dst, x)
	if len(m.blocks) > 1 && parallelizable(m.estWork()) {
		t := newTask()
		t.fn, t.m, t.dst, t.x = vstackMatVecKernel, m, dst, x
		parRun(t, len(m.blocks), 1)
		t.release()
		return
	}
	vstackMatVecRange(m, dst, x, 0, len(m.blocks))
}

func vstackMatVecKernel(t *task, _, lo, hi int) {
	vstackMatVecRange(t.m.(*VStackMat), t.dst, t.x, lo, hi)
}

func vstackMatVecRange(m *VStackMat, dst, x []float64, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		m.blocks[bi].MatVec(dst[m.offs[bi]:m.offs[bi+1]], x)
	}
}

// TMatVec accumulates Σᵢ Bᵢᵀ xᵢ over the row segments. Workers evaluate
// disjoint block subsets into private accumulators that the engine
// merges; block results land in pooled scratch, so the steady state
// allocates nothing.
func (m *VStackMat) TMatVec(dst, x []float64) {
	checkTMatVec(m, dst, x)
	// Zeroing and merging the accumulators costs O(workers·cols); only go
	// parallel when the stacked work clearly dominates it (mirrors the
	// Sparse.TMatVec guard).
	if len(m.blocks) > 1 && parallelizable(m.estWork()) && m.estWork() >= 8*m.cols {
		t := newTask()
		t.fn, t.m, t.dst, t.x = vstackTMatVecKernel, m, dst, x
		t.auxLen = m.cols
		parRun(t, len(m.blocks), 1)
		t.release()
		return
	}
	for j := range dst {
		dst[j] = 0
	}
	vstackTMatVecRange(m, dst, x, 0, len(m.blocks))
}

func vstackTMatVecKernel(t *task, worker, lo, hi int) {
	buf := t.dst
	if worker > 0 {
		buf = t.aux[worker-1]
	}
	vstackTMatVecRange(t.m.(*VStackMat), buf, t.x, lo, hi)
}

// vstackTMatVecRange adds Σ Bᵢᵀ xᵢ over blocks [lo, hi) into dst, which
// the caller must have zeroed.
func vstackTMatVecRange(m *VStackMat, dst, x []float64, lo, hi int) {
	s := getScratch(m.cols)
	for bi := lo; bi < hi; bi++ {
		m.blocks[bi].TMatVec(s.buf, x[m.offs[bi]:m.offs[bi+1]])
		for j, v := range s.buf {
			dst[j] += v
		}
	}
	s.put()
}

// estWork estimates the flop count of one stacked mat-vec: implicit
// blocks cost about O(rows + cols) each.
func (m *VStackMat) estWork() int {
	return m.rows + len(m.blocks)*m.cols
}

// MatMat hands each block the full input panel; block outputs are
// disjoint contiguous row panels of dst, so the parallel path distributes
// whole blocks across the engine's workers.
func (m *VStackMat) MatMat(dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	if len(m.blocks) > 1 && parallelizable(m.estWork()*k) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.k = vstackMatMatKernel, m, dst, x, k
		parRun(t, len(m.blocks), 1)
		t.release()
		return
	}
	vstackMatMatRange(m, dst, x, k, 0, len(m.blocks))
}

func vstackMatMatKernel(t *task, _, lo, hi int) {
	vstackMatMatRange(t.m.(*VStackMat), t.dst, t.x, t.k, lo, hi)
}

func vstackMatMatRange(m *VStackMat, dst, x []float64, k, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		MatMat(m.blocks[bi], dst[m.offs[bi]*k:m.offs[bi+1]*k], x, k)
	}
}

// TMatMat accumulates Σᵢ Bᵢᵀ·Xᵢ over the row-panel segments through
// pooled scratch panels; workers merge private cols×k accumulators.
func (m *VStackMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	if len(m.blocks) > 1 && parallelizable(m.estWork()*k) && m.estWork()*k >= 8*m.cols*k {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.k = vstackTMatMatKernel, m, dst, x, k
		t.auxLen = m.cols * k
		parRun(t, len(m.blocks), 1)
		t.release()
		return
	}
	for j := range dst {
		dst[j] = 0
	}
	vstackTMatMatRange(m, dst, x, k, 0, len(m.blocks))
}

func vstackTMatMatKernel(t *task, worker, lo, hi int) {
	buf := t.dst
	if worker > 0 {
		buf = t.aux[worker-1]
	}
	vstackTMatMatRange(t.m.(*VStackMat), buf, t.x, t.k, lo, hi)
}

// vstackTMatMatRange adds Σ Bᵢᵀ·Xᵢ over blocks [lo, hi) into dst, which
// the caller must have zeroed.
func vstackTMatMatRange(m *VStackMat, dst, x []float64, k, lo, hi int) {
	s := getScratch(m.cols * k)
	for bi := lo; bi < hi; bi++ {
		TMatMat(m.blocks[bi], s.buf, x[m.offs[bi]*k:m.offs[bi+1]*k], k)
		for j, v := range s.buf {
			dst[j] += v
		}
	}
	s.put()
}

// Abs stacks the children's absolute values.
func (m *VStackMat) Abs() Matrix {
	out := make([]Matrix, len(m.blocks))
	for i, b := range m.blocks {
		out[i] = Abs(b)
	}
	return VStack(out...)
}

// Sqr stacks the children's element-wise squares.
func (m *VStackMat) Sqr() Matrix {
	out := make([]Matrix, len(m.blocks))
	for i, b := range m.blocks {
		out[i] = Sqr(b)
	}
	return VStack(out...)
}

// ProductMat is the matrix product A·B, evaluated lazily.
type ProductMat struct {
	a, b Matrix
	// binary marks products known to materialize to a 0/1 matrix (e.g. the
	// range-query construction of Example 7.4), for which Abs and Sqr are
	// no-ops despite products not distributing over abs in general.
	binary bool
}

// Product returns the lazy matrix product a·b.
func Product(a, b Matrix) *ProductMat {
	_, ac := a.Dims()
	br, _ := b.Dims()
	if ac != br {
		panic(fmt.Sprintf("mat: Product inner dims %d vs %d", ac, br))
	}
	return &ProductMat{a: a, b: b}
}

// BinaryProduct returns the lazy product a·b declared by the caller to
// materialize to a 0/1 matrix, enabling implicit Abs/Sqr (paper §7.5 note
// on binary-valued matrices).
func BinaryProduct(a, b Matrix) *ProductMat {
	p := Product(a, b)
	p.binary = true
	return p
}

// Dims returns the product's dimensions.
func (m *ProductMat) Dims() (int, int) {
	ar, _ := m.a.Dims()
	_, bc := m.b.Dims()
	return ar, bc
}

// MatVec computes dst = A(Bx) through a pooled intermediate.
func (m *ProductMat) MatVec(dst, x []float64) {
	checkMatVec(m, dst, x)
	br, _ := m.b.Dims()
	s := getScratch(br)
	m.b.MatVec(s.buf, x)
	m.a.MatVec(dst, s.buf)
	s.put()
}

// TMatVec computes dst = Bᵀ(Aᵀx) through a pooled intermediate.
func (m *ProductMat) TMatVec(dst, x []float64) {
	checkTMatVec(m, dst, x)
	_, ac := m.a.Dims()
	s := getScratch(ac)
	m.a.TMatVec(s.buf, x)
	m.b.TMatVec(dst, s.buf)
	s.put()
}

// MatMat computes dst = A·(B·X) through a pooled intermediate panel.
func (m *ProductMat) MatMat(dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	br, _ := m.b.Dims()
	s := getScratch(br * k)
	MatMat(m.b, s.buf, x, k)
	MatMat(m.a, dst, s.buf, k)
	s.put()
}

// TMatMat computes dst = Bᵀ·(Aᵀ·X) through a pooled intermediate panel.
func (m *ProductMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	_, ac := m.a.Dims()
	s := getScratch(ac * k)
	TMatMat(m.a, s.buf, x, k)
	TMatMat(m.b, dst, s.buf, k)
	s.put()
}

// Abs returns the product itself when it is declared binary, and a dense
// materialization otherwise (abs does not distribute over products).
func (m *ProductMat) Abs() Matrix {
	if m.binary {
		return m
	}
	return Materialize(m).Abs()
}

// Sqr returns the product itself when it is declared binary, and a dense
// materialization otherwise.
func (m *ProductMat) Sqr() Matrix {
	if m.binary {
		return m
	}
	return Materialize(m).Sqr()
}

// KroneckerMat is the Kronecker product A⊗B (paper Definition 7.2),
// evaluated via the vec-trick in n_B·Time(A) + m_A·Time(B).
type KroneckerMat struct {
	a, b Matrix
}

// Kron returns the Kronecker product of the factors, folding right to
// left; Kron(A, B, C) = A⊗(B⊗C).
func Kron(factors ...Matrix) Matrix {
	if len(factors) == 0 {
		panic("mat: Kron of zero factors")
	}
	out := factors[len(factors)-1]
	for i := len(factors) - 2; i >= 0; i-- {
		out = &KroneckerMat{a: factors[i], b: out}
	}
	return out
}

// Dims returns (m_A·m_B, n_A·n_B).
func (m *KroneckerMat) Dims() (int, int) {
	ar, ac := m.a.Dims()
	br, bc := m.b.Dims()
	return ar * br, ac * bc
}

// Factors returns the two Kronecker factors.
func (m *KroneckerMat) Factors() (Matrix, Matrix) { return m.a, m.b }

// MatVec computes (A⊗B)x by reshaping x into an n_A×n_B matrix X and
// evaluating vec(A·(X·Bᵀ)ᵀ... concretely: Z[j1,:] = B·X[j1,:] for each j1,
// then dst[:,i2] = A·Z[:,i2] for each i2. Both phases are data-parallel
// over the outer factor's index and run through the engine; the Z buffer
// and the per-worker column scratch come from the pool.
func (m *KroneckerMat) MatVec(dst, x []float64) {
	checkMatVec(m, dst, x)
	ar, ac := m.a.Dims()
	br, bc := m.b.Dims()
	z := getScratch(ac * br) // z[j1*br + i2]
	// Phase 1: apply B to each of the ac rows of X (row j1 = x[j1*bc:(j1+1)*bc]).
	if parallelizable(ac * (br + bc)) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.z = kronRowsKernel, m, dst, x, z.buf
		parRun(t, ac, grainRows(br+bc))
		t.release()
	} else {
		kronRowsRange(m, z.buf, x, 0, ac)
	}
	// Phase 2: apply A down each of the br columns of Z.
	if parallelizable(br * (ar + ac)) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.z = kronColsKernel, m, dst, x, z.buf
		parRun(t, br, grainRows(ar+ac))
		t.release()
	} else {
		kronColsRange(m, dst, z.buf, 0, br)
	}
	z.put()
}

func kronRowsKernel(t *task, _, lo, hi int) {
	kronRowsRange(t.m.(*KroneckerMat), t.z, t.x, lo, hi)
}

func kronRowsRange(m *KroneckerMat, z, x []float64, lo, hi int) {
	_, bc := m.b.Dims()
	br, _ := m.b.Dims()
	for j1 := lo; j1 < hi; j1++ {
		m.b.MatVec(z[j1*br:(j1+1)*br], x[j1*bc:(j1+1)*bc])
	}
}

func kronColsKernel(t *task, _, lo, hi int) {
	kronColsRange(t.m.(*KroneckerMat), t.dst, t.z, lo, hi)
}

func kronColsRange(m *KroneckerMat, dst, z []float64, lo, hi int) {
	ar, ac := m.a.Dims()
	br, _ := m.b.Dims()
	in := getScratch(ac)
	out := getScratch(ar)
	for i2 := lo; i2 < hi; i2++ {
		for j1 := 0; j1 < ac; j1++ {
			in.buf[j1] = z[j1*br+i2]
		}
		m.a.MatVec(out.buf, in.buf)
		for i1 := 0; i1 < ar; i1++ {
			dst[i1*br+i2] = out.buf[i1]
		}
	}
	in.put()
	out.put()
}

// TMatVec computes (A⊗B)ᵀx = (Aᵀ⊗Bᵀ)x by the same trick with the
// transposed factors, parallelized the same way.
func (m *KroneckerMat) TMatVec(dst, x []float64) {
	checkTMatVec(m, dst, x)
	ar, ac := m.a.Dims()
	br, bc := m.b.Dims()
	z := getScratch(ar * bc) // z[i1*bc + j2] = Bᵀ applied to row i1 of X
	if parallelizable(ar * (br + bc)) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.z = kronTRowsKernel, m, dst, x, z.buf
		parRun(t, ar, grainRows(br+bc))
		t.release()
	} else {
		kronTRowsRange(m, z.buf, x, 0, ar)
	}
	if parallelizable(bc * (ar + ac)) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.z = kronTColsKernel, m, dst, x, z.buf
		parRun(t, bc, grainRows(ar+ac))
		t.release()
	} else {
		kronTColsRange(m, dst, z.buf, 0, bc)
	}
	z.put()
}

func kronTRowsKernel(t *task, _, lo, hi int) {
	kronTRowsRange(t.m.(*KroneckerMat), t.z, t.x, lo, hi)
}

func kronTRowsRange(m *KroneckerMat, z, x []float64, lo, hi int) {
	br, bc := m.b.Dims()
	for i1 := lo; i1 < hi; i1++ {
		m.b.TMatVec(z[i1*bc:(i1+1)*bc], x[i1*br:(i1+1)*br])
	}
}

func kronTColsKernel(t *task, _, lo, hi int) {
	kronTColsRange(t.m.(*KroneckerMat), t.dst, t.z, lo, hi)
}

func kronTColsRange(m *KroneckerMat, dst, z []float64, lo, hi int) {
	ar, ac := m.a.Dims()
	_, bc := m.b.Dims()
	in := getScratch(ar)
	out := getScratch(ac)
	for j2 := lo; j2 < hi; j2++ {
		for i1 := 0; i1 < ar; i1++ {
			in.buf[i1] = z[i1*bc+j2]
		}
		m.a.TMatVec(out.buf, in.buf)
		for j1 := 0; j1 < ac; j1++ {
			dst[j1*bc+j2] = out.buf[j1]
		}
	}
	in.put()
	out.put()
}

// MatMat evaluates (A⊗B)·X by the vec-trick on whole panels: phase 1
// applies B to each contiguous bc×k sub-panel of X (a child MatMat, so
// the factor's batched kernel is reused), phase 2 gathers the ac×k panel
// of each inner index, applies A, and scatters the result rows. Both
// phases are data-parallel over the outer factor's index and run through
// the engine, mirroring the MatVec kernels.
func (m *KroneckerMat) MatMat(dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	ar, ac := m.a.Dims()
	br, bc := m.b.Dims()
	z := getScratch(ac * br * k) // z row (j1*br + i2) holds B·X panel rows
	if parallelizable(ac * (br + bc) * k) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.z, t.k = kronMatMatRowsKernel, m, dst, x, z.buf, k
		parRun(t, ac, grainRows((br+bc)*k))
		t.release()
	} else {
		kronMatMatRowsRange(m, z.buf, x, k, 0, ac)
	}
	if parallelizable(br * (ar + ac) * k) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.z, t.k = kronMatMatColsKernel, m, dst, x, z.buf, k
		parRun(t, br, grainRows((ar+ac)*k))
		t.release()
	} else {
		kronMatMatColsRange(m, dst, z.buf, k, 0, br)
	}
	z.put()
}

func kronMatMatRowsKernel(t *task, _, lo, hi int) {
	kronMatMatRowsRange(t.m.(*KroneckerMat), t.z, t.x, t.k, lo, hi)
}

func kronMatMatRowsRange(m *KroneckerMat, z, x []float64, k, lo, hi int) {
	br, bc := m.b.Dims()
	for j1 := lo; j1 < hi; j1++ {
		MatMat(m.b, z[j1*br*k:(j1+1)*br*k], x[j1*bc*k:(j1+1)*bc*k], k)
	}
}

func kronMatMatColsKernel(t *task, _, lo, hi int) {
	kronMatMatColsRange(t.m.(*KroneckerMat), t.dst, t.z, t.k, lo, hi)
}

func kronMatMatColsRange(m *KroneckerMat, dst, z []float64, k, lo, hi int) {
	ar, ac := m.a.Dims()
	br, _ := m.b.Dims()
	in := getScratch(ac * k)
	out := getScratch(ar * k)
	for i2 := lo; i2 < hi; i2++ {
		for j1 := 0; j1 < ac; j1++ {
			copy(in.buf[j1*k:(j1+1)*k], z[(j1*br+i2)*k:(j1*br+i2+1)*k])
		}
		MatMat(m.a, out.buf, in.buf, k)
		for i1 := 0; i1 < ar; i1++ {
			copy(dst[(i1*br+i2)*k:(i1*br+i2+1)*k], out.buf[i1*k:(i1+1)*k])
		}
	}
	in.put()
	out.put()
}

// TMatMat evaluates (A⊗B)ᵀ·X = (Aᵀ⊗Bᵀ)·X by the same trick with the
// transposed factors, parallelized the same way.
func (m *KroneckerMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	ar, ac := m.a.Dims()
	br, bc := m.b.Dims()
	z := getScratch(ar * bc * k) // z row (i1*bc + j2) holds Bᵀ·X panel rows
	if parallelizable(ar * (br + bc) * k) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.z, t.k = kronTMatMatRowsKernel, m, dst, x, z.buf, k
		parRun(t, ar, grainRows((br+bc)*k))
		t.release()
	} else {
		kronTMatMatRowsRange(m, z.buf, x, k, 0, ar)
	}
	if parallelizable(bc * (ar + ac) * k) {
		t := newTask()
		t.fn, t.m, t.dst, t.x, t.z, t.k = kronTMatMatColsKernel, m, dst, x, z.buf, k
		parRun(t, bc, grainRows((ar+ac)*k))
		t.release()
	} else {
		kronTMatMatColsRange(m, dst, z.buf, k, 0, bc)
	}
	z.put()
}

func kronTMatMatRowsKernel(t *task, _, lo, hi int) {
	kronTMatMatRowsRange(t.m.(*KroneckerMat), t.z, t.x, t.k, lo, hi)
}

func kronTMatMatRowsRange(m *KroneckerMat, z, x []float64, k, lo, hi int) {
	br, bc := m.b.Dims()
	for i1 := lo; i1 < hi; i1++ {
		TMatMat(m.b, z[i1*bc*k:(i1+1)*bc*k], x[i1*br*k:(i1+1)*br*k], k)
	}
}

func kronTMatMatColsKernel(t *task, _, lo, hi int) {
	kronTMatMatColsRange(t.m.(*KroneckerMat), t.dst, t.z, t.k, lo, hi)
}

func kronTMatMatColsRange(m *KroneckerMat, dst, z []float64, k, lo, hi int) {
	ar, ac := m.a.Dims()
	_, bc := m.b.Dims()
	in := getScratch(ar * k)
	out := getScratch(ac * k)
	for j2 := lo; j2 < hi; j2++ {
		for i1 := 0; i1 < ar; i1++ {
			copy(in.buf[i1*k:(i1+1)*k], z[(i1*bc+j2)*k:(i1*bc+j2+1)*k])
		}
		TMatMat(m.a, out.buf, in.buf, k)
		for j1 := 0; j1 < ac; j1++ {
			copy(dst[(j1*bc+j2)*k:(j1*bc+j2+1)*k], out.buf[j1*k:(j1+1)*k])
		}
	}
	in.put()
	out.put()
}

// Abs distributes over Kronecker products: |A⊗B| = |A|⊗|B|.
func (m *KroneckerMat) Abs() Matrix { return &KroneckerMat{a: Abs(m.a), b: Abs(m.b)} }

// Sqr distributes over Kronecker products: (A⊗B)² = A²⊗B² element-wise.
func (m *KroneckerMat) Sqr() Matrix { return &KroneckerMat{a: Sqr(m.a), b: Sqr(m.b)} }

// TransposeMat is the lazy transpose of a matrix.
type TransposeMat struct{ m Matrix }

// T returns the transpose of m, unwrapping double transposes.
func T(m Matrix) Matrix {
	if t, ok := m.(*TransposeMat); ok {
		return t.m
	}
	return &TransposeMat{m: m}
}

// Dims returns the transposed dimensions.
func (t *TransposeMat) Dims() (int, int) {
	r, c := t.m.Dims()
	return c, r
}

// MatVec computes dst = Mᵀx via the child's TMatVec.
func (t *TransposeMat) MatVec(dst, x []float64) { t.m.TMatVec(dst, x) }

// TMatVec computes dst = Mx via the child's MatVec.
func (t *TransposeMat) TMatVec(dst, x []float64) { t.m.MatVec(dst, x) }

// MatMat computes dst = Mᵀ·X via the child's batched transpose kernel.
func (t *TransposeMat) MatMat(dst, x []float64, k int) {
	checkMatMat(t, dst, x, k)
	TMatMat(t.m, dst, x, k)
}

// TMatMat computes dst = M·X via the child's batched kernel.
func (t *TransposeMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(t, dst, x, k)
	MatMat(t.m, dst, x, k)
}

// Abs transposes the child's absolute value.
func (t *TransposeMat) Abs() Matrix { return T(Abs(t.m)) }

// Sqr transposes the child's element-wise square.
func (t *TransposeMat) Sqr() Matrix { return T(Sqr(t.m)) }

// ScaledMat is c·M for a scalar c.
type ScaledMat struct {
	c float64
	m Matrix
}

// Scaled returns the scalar multiple c·m.
func Scaled(c float64, m Matrix) *ScaledMat { return &ScaledMat{c: c, m: m} }

// Dims returns the child's dimensions.
func (s *ScaledMat) Dims() (int, int) { return s.m.Dims() }

// MatVec computes dst = c·(Mx).
func (s *ScaledMat) MatVec(dst, x []float64) {
	s.m.MatVec(dst, x)
	for i := range dst {
		dst[i] *= s.c
	}
}

// TMatVec computes dst = c·(Mᵀx).
func (s *ScaledMat) TMatVec(dst, x []float64) {
	s.m.TMatVec(dst, x)
	for i := range dst {
		dst[i] *= s.c
	}
}

// MatMat computes dst = c·(M·X).
func (s *ScaledMat) MatMat(dst, x []float64, k int) {
	checkMatMat(s, dst, x, k)
	MatMat(s.m, dst, x, k)
	for i := range dst {
		dst[i] *= s.c
	}
}

// TMatMat computes dst = c·(Mᵀ·X).
func (s *ScaledMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(s, dst, x, k)
	TMatMat(s.m, dst, x, k)
	for i := range dst {
		dst[i] *= s.c
	}
}

// Abs returns |c|·|M|.
func (s *ScaledMat) Abs() Matrix { return Scaled(math.Abs(s.c), Abs(s.m)) }

// Sqr returns c²·M².
func (s *ScaledMat) Sqr() Matrix { return Scaled(s.c*s.c, Sqr(s.m)) }

// DiagMat is a diagonal matrix stored as its diagonal.
type DiagMat struct{ d []float64 }

// Diag returns the diagonal matrix with the given diagonal (not copied).
func Diag(d []float64) *DiagMat { return &DiagMat{d: d} }

// Dims returns (n, n).
func (m *DiagMat) Dims() (int, int) { return len(m.d), len(m.d) }

// MatVec computes dst = d ⊙ x.
func (m *DiagMat) MatVec(dst, x []float64) {
	checkMatVec(m, dst, x)
	for i, v := range m.d {
		dst[i] = v * x[i]
	}
}

// TMatVec computes dst = d ⊙ x (diagonal matrices are symmetric).
func (m *DiagMat) TMatVec(dst, x []float64) {
	checkTMatVec(m, dst, x)
	for i, v := range m.d {
		dst[i] = v * x[i]
	}
}

// MatMat scales panel row i by d[i].
func (m *DiagMat) MatMat(dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	diagPanel(dst, x, m.d, k)
}

// TMatMat scales panel row i by d[i] (diagonal matrices are symmetric).
func (m *DiagMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	diagPanel(dst, x, m.d, k)
}

func diagPanel(dst, x, d []float64, k int) {
	for i, v := range d {
		xr := x[i*k : (i+1)*k]
		o := dst[i*k : (i+1)*k]
		for t := range o {
			o[t] = v * xr[t]
		}
	}
}

// Abs returns the diagonal of absolute values.
func (m *DiagMat) Abs() Matrix {
	out := make([]float64, len(m.d))
	for i, v := range m.d {
		out[i] = math.Abs(v)
	}
	return Diag(out)
}

// Sqr returns the diagonal of squares.
func (m *DiagMat) Sqr() Matrix {
	out := make([]float64, len(m.d))
	for i, v := range m.d {
		out[i] = v * v
	}
	return Diag(out)
}

// RowScaled returns diag(w)·M, the matrix whose i-th row is w[i] times the
// i-th row of m. It is used by inference to weight measurements with
// unequal noise scales.
func RowScaled(w []float64, m Matrix) Matrix {
	r, _ := m.Dims()
	if len(w) != r {
		panic(fmt.Sprintf("mat: RowScaled weights length %d != rows %d", len(w), r))
	}
	return &rowScaledMat{w: w, m: m}
}

type rowScaledMat struct {
	w []float64
	m Matrix
}

func (s *rowScaledMat) Dims() (int, int) { return s.m.Dims() }

func (s *rowScaledMat) MatVec(dst, x []float64) {
	s.m.MatVec(dst, x)
	for i, w := range s.w {
		dst[i] *= w
	}
}

func (s *rowScaledMat) TMatVec(dst, x []float64) {
	t := getScratch(len(x))
	for i, w := range s.w {
		t.buf[i] = x[i] * w
	}
	s.m.TMatVec(dst, t.buf)
	t.put()
}

// MatMat evaluates the child panel product, then scales output row i by
// w[i].
func (s *rowScaledMat) MatMat(dst, x []float64, k int) {
	checkMatMat(s, dst, x, k)
	MatMat(s.m, dst, x, k)
	for i, w := range s.w {
		o := dst[i*k : (i+1)*k]
		for t := range o {
			o[t] *= w
		}
	}
}

// TMatMat scales input panel row i by w[i] into pooled scratch, then
// evaluates the child's transpose panel product.
func (s *rowScaledMat) TMatMat(dst, x []float64, k int) {
	checkTMatMat(s, dst, x, k)
	t := getScratch(len(s.w) * k)
	for i, w := range s.w {
		xr := x[i*k : (i+1)*k]
		o := t.buf[i*k : (i+1)*k]
		for c := range o {
			o[c] = w * xr[c]
		}
	}
	TMatMat(s.m, dst, t.buf, k)
	t.put()
}

// Abs scales the child's absolute value rows by |w|.
func (s *rowScaledMat) Abs() Matrix {
	w := make([]float64, len(s.w))
	for i, v := range s.w {
		w[i] = math.Abs(v)
	}
	return RowScaled(w, Abs(s.m))
}

// Sqr scales the child's squared rows by w².
func (s *rowScaledMat) Sqr() Matrix {
	w := make([]float64, len(s.w))
	for i, v := range s.w {
		w[i] = v * v
	}
	return RowScaled(w, Sqr(s.m))
}
