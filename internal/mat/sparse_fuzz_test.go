package mat

import (
	"math/rand/v2"
	"testing"

	"repro/internal/vec"
)

// decodeTriplets turns fuzz bytes into a triplet list over a rows×cols
// domain, deliberately generating duplicates, zeros and cancelling pairs.
func decodeTriplets(data []byte, rows, cols int) []Triplet {
	var out []Triplet
	for k := 0; k+2 < len(data); k += 3 {
		t := Triplet{
			Row: int(data[k]) % rows,
			Col: int(data[k+1]) % cols,
			Val: float64(int(data[k+2]) - 128),
		}
		out = append(out, t)
		if data[k+2]%5 == 0 { // exact duplicate coordinate
			out = append(out, Triplet{Row: t.Row, Col: t.Col, Val: 1})
		}
		if data[k+2]%7 == 0 { // cancelling pair sums to zero
			out = append(out, Triplet{Row: t.Row, Col: t.Col, Val: -t.Val - 1})
			out = append(out, Triplet{Row: t.Row, Col: t.Col, Val: -1})
		}
	}
	return out
}

// denseFromTriplets is the reference construction: accumulate into an
// explicit dense matrix.
func denseFromTriplets(rows, cols int, tri []Triplet) *Dense {
	d := NewDense(rows, cols, nil)
	for _, t := range tri {
		d.Set(t.Row, t.Col, d.At(t.Row, t.Col)+t.Val)
	}
	return d
}

func checkSparseAgainstDense(t *testing.T, rows, cols int, tri []Triplet) {
	t.Helper()
	s := NewSparse(rows, cols, tri)
	want := denseFromTriplets(rows, cols, tri)
	if !Equal(s, want, 0) {
		t.Fatalf("CSR disagrees with dense reference for %d triplets", len(tri))
	}
	// Structural invariants: sorted strictly increasing columns per row,
	// no stored zeros, monotone rowPtr.
	for i := 0; i < rows; i++ {
		if s.rowPtr[i] > s.rowPtr[i+1] {
			t.Fatalf("rowPtr not monotone at row %d", i)
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			if s.val[k] == 0 {
				t.Fatalf("stored zero at row %d", i)
			}
			if k > s.rowPtr[i] && s.colIdx[k] <= s.colIdx[k-1] {
				t.Fatalf("columns not strictly increasing in row %d", i)
			}
		}
	}
	// CSR mat-vec must match the dense mat-vec too.
	x := make([]float64, cols)
	for j := range x {
		x[j] = float64(j%5) - 2
	}
	if !vec.AllClose(Mul(s, x), Mul(want, x), 1e-12, 1e-12) {
		t.Fatal("CSR MatVec disagrees with dense reference")
	}
}

// FuzzNewSparse checks that CSR construction (sort, duplicate merge,
// zero dropping) matches the dense reference for arbitrary coordinate
// soups. The seed corpus runs under plain `go test`.
func FuzzNewSparse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 130, 0, 0, 126, 1, 2, 128})
	f.Add([]byte{7, 7, 135, 7, 7, 121, 7, 7, 128, 3, 1, 140})
	seed := make([]byte, 300)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range seed {
		seed[i] = byte(rng.IntN(256))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		checkSparseAgainstDense(t, 8, 11, decodeTriplets(data, 8, 11))
	})
}

// TestNewSparseRandomizedAgainstDense complements the fuzz seeds with
// larger randomized instances.
func TestNewSparseRandomizedAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.IntN(40), 1+rng.IntN(40)
		tri := make([]Triplet, rng.IntN(300))
		for i := range tri {
			tri[i] = Triplet{Row: rng.IntN(rows), Col: rng.IntN(cols), Val: float64(rng.IntN(9) - 4)}
		}
		checkSparseAgainstDense(t, rows, cols, tri)
	}
}
