package mat

// This file implements the incremental side of the Gram tier: when a
// measurement log grows by a few rows, the cached G = MᵀM is updated
// with a rank-k outer-product pass over just the new rows instead of a
// from-scratch blocked rebuild over the whole log.
//
// Determinism is the load-bearing property. GramUpdate and
// AddScaledTMatMat always run the serial Dense/CSR kernels — never the
// parallel engine — and those kernels accumulate every output cell in
// ascending row order, exactly like the serial kernels behind GramInto.
// A Gram matrix grown by a sequence of GramUpdate calls over row blocks
// b₀, b₁, … therefore equals, bit for bit, a single serial
// GramInto/GramUpdate pass over the stacked rows: each output cell sees
// the same additions in the same order either way. That is what lets an
// incremental solve path promise bit-identical answers to its cold
// rebuild (see solver.NormalMulti) — and it is also why these functions
// must stay serial: the engine's per-worker partial-Gram merge
// reassociates the per-cell sums.

// GramUpdate accumulates g += c²·mᵀm — the Gram contribution of the
// rows of m, each scaled by c (so a block with per-row weight w folds
// in as GramUpdate(g, m, w)). g must be cols×cols and hold either zeros
// or a previously accumulated, exactly symmetric Gram state; it is kept
// exactly symmetric on return. With c == 1 the accumulation is
// bit-identical to the serial GramInto kernels, so growing G
// incrementally matches a cold serial rebuild to the last bit (see the
// file comment). Dense and CSR operands use the blocked serial kernels;
// any other matrix type falls back to Gram(m) plus a scaled elementwise
// add (deterministic, but not bit-matched to the streaming kernels).
func GramUpdate(g *Dense, m Matrix, c float64) {
	_, cols := m.Dims()
	if g.rows != cols || g.cols != cols {
		panic("mat: GramUpdate output dims mismatch")
	}
	c2 := c * c
	switch t := m.(type) {
	case *Dense:
		denseGramUpdateRange(t, g.data, c2, 0, t.rows)
	case *Sparse:
		sparseGramUpdateRange(t, g.data, c2, 0, t.rows)
	default:
		gb := Gram(m)
		for i, v := range gb.data {
			g.data[i] += c2 * v
		}
		return
	}
	gramMirror(g.data, cols)
}

// denseGramUpdateRange is denseGramRange with every row's contribution
// scaled by c2, accumulating on top of g instead of requiring it
// zeroed. The per-cell addition order (ascending rows) and the
// upper-triangle + stray-diagonal-block write pattern are identical to
// denseGramRange, and (c2·a)·v with c2 == 1 is exactly a·v, so the
// caller's gramMirror leaves a state bit-identical to the serial
// GramInto path over the same rows.
func denseGramUpdateRange(d *Dense, g []float64, c2 float64, lo, hi int) {
	c := d.cols
	if c == 0 {
		return
	}
	kb := gramKB(c)
	for bs := lo; bs < hi; bs += kb {
		be := bs + kb
		if be > hi {
			be = hi
		}
		j1 := 0
		for ; j1+3 < c; j1 += 4 {
			g0 := g[j1*c+j1 : (j1+1)*c]
			g1 := g[(j1+1)*c+j1 : (j1+2)*c]
			g2 := g[(j1+2)*c+j1 : (j1+3)*c]
			g3 := g[(j1+3)*c+j1 : (j1+4)*c]
			for r := bs; r < be; r++ {
				row := d.data[r*c : (r+1)*c]
				a0, a1, a2, a3 := c2*row[j1], c2*row[j1+1], c2*row[j1+2], c2*row[j1+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				tail := row[j1:]
				for t, v := range tail {
					g0[t] += a0 * v
					g1[t] += a1 * v
					g2[t] += a2 * v
					g3[t] += a3 * v
				}
			}
		}
		for ; j1 < c; j1++ {
			g0 := g[j1*c+j1 : (j1+1)*c]
			for r := bs; r < be; r++ {
				row := d.data[r*c : (r+1)*c]
				a0 := c2 * row[j1]
				if a0 == 0 {
					continue
				}
				tail := row[j1:]
				for t, v := range tail {
					g0[t] += a0 * v
				}
			}
		}
	}
}

// sparseGramUpdateRange is sparseGramRange with scaled contributions,
// accumulating on top of g. Same determinism argument as the dense
// kernel: per-cell adds arrive in ascending row order, and c2 == 1
// reproduces the unscaled kernel bit for bit.
func sparseGramUpdateRange(s *Sparse, g []float64, c2 float64, lo, hi int) {
	c := s.cols
	for i := lo; i < hi; i++ {
		klo, khi := s.rowPtr[i], s.rowPtr[i+1]
		for k1 := klo; k1 < khi; k1++ {
			v1 := c2 * s.val[k1]
			grow := g[s.colIdx[k1]*c:]
			cols := s.colIdx[k1:khi]
			vals := s.val[k1:khi]
			for t, j2 := range cols {
				grow[j2] += v1 * vals[t]
			}
		}
	}
}

// AddScaledTMatMat accumulates dst += c·mᵀy for a rows×k row-major
// panel y into the cols×k row-major panel dst — the right-hand-side
// companion of GramUpdate (a block with per-row weight w and answer
// panel Y folds into the normal-equation RHS as
// AddScaledTMatMat(dst, m, Y, k, w·w)). Like GramUpdate it is strictly
// serial and accumulates in ascending row order, so incremental RHS
// state matches a cold rebuild over the same blocks bit for bit. Dense
// and CSR operands stream directly; other matrix types fall back to one
// TMatMat into scratch plus a scaled add.
func AddScaledTMatMat(dst []float64, m Matrix, y []float64, k int, c float64) {
	rows, cols := m.Dims()
	if k < 1 {
		panic("mat: AddScaledTMatMat needs k >= 1")
	}
	if len(y) != rows*k || len(dst) != cols*k {
		panic("mat: AddScaledTMatMat panel length mismatch")
	}
	switch t := m.(type) {
	case *Dense:
		for i := 0; i < rows; i++ {
			row := t.data[i*cols : (i+1)*cols]
			yr := y[i*k : (i+1)*k]
			for j, v := range row {
				if v == 0 {
					continue
				}
				cv := c * v
				dj := dst[j*k : (j+1)*k]
				for cc, yv := range yr {
					dj[cc] += cv * yv
				}
			}
		}
	case *Sparse:
		for i := 0; i < rows; i++ {
			yr := y[i*k : (i+1)*k]
			for p := t.rowPtr[i]; p < t.rowPtr[i+1]; p++ {
				cv := c * t.val[p]
				dj := dst[t.colIdx[p]*k : (t.colIdx[p]+1)*k]
				for cc, yv := range yr {
					dj[cc] += cv * yv
				}
			}
		}
	default:
		tmp := getScratch(cols * k)
		TMatMat(m, tmp.buf, y, k)
		for i, v := range tmp.buf {
			dst[i] += c * v
		}
		tmp.put()
	}
}
