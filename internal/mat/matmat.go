package mat

import "fmt"

// This file defines the batched multi-right-hand-side (multi-RHS) tier of
// the compute engine: MatMat and TMatMat evaluate a matrix against a
// *panel* of k vectors at once instead of one vector at a time.
//
// # Panel layout
//
// A panel is a row-major rows×k slice: row i occupies x[i*k : (i+1)*k]
// and holds the i-th component of each of the k right-hand sides (column
// c of the panel is the c-th RHS). The layout makes every kernel's inner
// loop a contiguous length-k run over the panel row, which
//
//   - amortizes each matrix-element (or CSR entry) load over k flops,
//   - turns the scattered writes of transpose kernels into contiguous
//     k-wide axpys, and
//   - auto-vectorizes: the inner loops carry no cross-iteration
//     dependence and walk unit-stride memory on every operand.
//
// # Cost model
//
// MatMat(M, k) costs Time(M)·k flops but performs one pass over M's
// representation instead of k, so for memory-bound operands (Dense rows,
// CSR entries) throughput approaches k× a single MatVec until the panel
// stops fitting in registers/L1. Structured matrices (Kron, VStack,
// Product, Prefix, Wavelet, ...) distribute the panel to their children
// and inherit the same amortization. Matrices without a native kernel
// fall back to k pooled MatVecs through a gather/scatter shim, which is
// never slower than the caller looping MatVec itself.

// MatMater is implemented by matrices with a native batched kernel
// computing dst = M·X for a cols×k row-major panel X into the rows×k
// panel dst.
type MatMater interface {
	MatMat(dst, x []float64, k int)
}

// TMatMater is implemented by matrices with a native batched transpose
// kernel computing dst = Mᵀ·X for a rows×k panel X into the cols×k
// panel dst.
type TMatMater interface {
	TMatMat(dst, x []float64, k int)
}

// checkMatMat panics if the panel dimensions do not match m's.
func checkMatMat(m Matrix, dst, x []float64, k int) {
	r, c := m.Dims()
	if k < 1 || len(x) != c*k || len(dst) != r*k {
		panic(fmt.Sprintf("mat: MatMat dims %dx%d k=%d with len(x)=%d len(dst)=%d", r, c, k, len(x), len(dst)))
	}
}

// checkTMatMat panics if the panel dimensions do not match mᵀ's.
func checkTMatMat(m Matrix, dst, x []float64, k int) {
	r, c := m.Dims()
	if k < 1 || len(x) != r*k || len(dst) != c*k {
		panic(fmt.Sprintf("mat: TMatMat dims %dx%d k=%d with len(x)=%d len(dst)=%d", r, c, k, len(x), len(dst)))
	}
}

// MatMat computes dst = M·X for a cols×k row-major panel X, dispatching
// to the operand's native batched kernel when it has one and to the
// column-by-column MatVec fallback otherwise. k = 1 degenerates to a
// plain MatVec.
func MatMat(m Matrix, dst, x []float64, k int) {
	checkMatMat(m, dst, x, k)
	if k == 1 {
		m.MatVec(dst, x)
		return
	}
	if mm, ok := m.(MatMater); ok {
		mm.MatMat(dst, x, k)
		return
	}
	matMatGeneric(m, dst, x, k)
}

// TMatMat computes dst = Mᵀ·X for a rows×k row-major panel X, with the
// same dispatch as MatMat.
func TMatMat(m Matrix, dst, x []float64, k int) {
	checkTMatMat(m, dst, x, k)
	if k == 1 {
		m.TMatVec(dst, x)
		return
	}
	if mm, ok := m.(TMatMater); ok {
		mm.TMatMat(dst, x, k)
		return
	}
	tMatMatGeneric(m, dst, x, k)
}

// Mul2 answers m on two vectors at once — one two-column panel product,
// a single pass over m instead of two mat-vecs — returning the rows×2
// row-major panel (row i holds [m·x1]ᵢ, [m·x2]ᵢ). It serves the
// compare-two-estimates loops (MWEM worst-approximated selection,
// per-query error metrics).
func Mul2(m Matrix, x1, x2 []float64) []float64 {
	r, c := m.Dims()
	xp := make([]float64, c*2)
	for j := 0; j < c; j++ {
		xp[2*j] = x1[j]
		xp[2*j+1] = x2[j]
	}
	out := make([]float64, r*2)
	MatMat(m, out, xp, 2)
	return out
}

// matMatGeneric evaluates the panel one column at a time through MatVec,
// gathering and scattering through pooled scratch. It is the correctness
// fallback for matrices without a native batched kernel.
func matMatGeneric(m Matrix, dst, x []float64, k int) {
	r, c := m.Dims()
	xc := getScratch(c)
	yc := getScratch(r)
	for col := 0; col < k; col++ {
		for j := 0; j < c; j++ {
			xc.buf[j] = x[j*k+col]
		}
		m.MatVec(yc.buf, xc.buf)
		for i := 0; i < r; i++ {
			dst[i*k+col] = yc.buf[i]
		}
	}
	xc.put()
	yc.put()
}

// tMatMatGeneric is the transpose analogue of matMatGeneric.
func tMatMatGeneric(m Matrix, dst, x []float64, k int) {
	r, c := m.Dims()
	xc := getScratch(r)
	yc := getScratch(c)
	for col := 0; col < k; col++ {
		for i := 0; i < r; i++ {
			xc.buf[i] = x[i*k+col]
		}
		m.TMatVec(yc.buf, xc.buf)
		for j := 0; j < c; j++ {
			dst[j*k+col] = yc.buf[j]
		}
	}
	xc.put()
	yc.put()
}
