package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(7, 11)) }

// randVec returns a deterministic pseudo-random vector for tests.
func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*4 - 2
	}
	return x
}

// checkAgainstDense verifies that m's MatVec and TMatVec agree with its
// dense materialization on random vectors.
func checkAgainstDense(t *testing.T, m Matrix, trials int) {
	t.Helper()
	rng := testRand()
	d := Materialize(m)
	r, c := m.Dims()
	dr, dc := d.Dims()
	if r != dr || c != dc {
		t.Fatalf("dims mismatch: implicit %dx%d dense %dx%d", r, c, dr, dc)
	}
	for k := 0; k < trials; k++ {
		x := randVec(rng, c)
		got := Mul(m, x)
		want := Mul(d, x)
		if !vec.AllClose(got, want, 1e-9, 1e-9) {
			t.Fatalf("MatVec mismatch (trial %d):\n got %v\nwant %v", k, got, want)
		}
		y := randVec(rng, r)
		gotT := TMul(m, y)
		wantT := TMul(d, y)
		if !vec.AllClose(gotT, wantT, 1e-9, 1e-9) {
			t.Fatalf("TMatVec mismatch (trial %d):\n got %v\nwant %v", k, gotT, wantT)
		}
	}
}

func TestIdentityMatVec(t *testing.T) {
	m := Identity(5)
	x := []float64{1, 2, 3, 4, 5}
	if got := Mul(m, x); !vec.AllClose(got, x, 0, 0) {
		t.Fatalf("identity changed input: %v", got)
	}
	checkAgainstDense(t, m, 3)
}

func TestOnesMatVec(t *testing.T) {
	m := Ones(3, 4)
	x := []float64{1, 2, 3, 4}
	got := Mul(m, x)
	for _, v := range got {
		if v != 10 {
			t.Fatalf("Ones matvec = %v, want all 10", got)
		}
	}
	checkAgainstDense(t, m, 3)
}

func TestTotalIsSingleRowOnes(t *testing.T) {
	m := Total(6)
	r, c := m.Dims()
	if r != 1 || c != 6 {
		t.Fatalf("Total dims = %dx%d", r, c)
	}
	if got := Mul(m, []float64{1, 1, 1, 1, 1, 1}); got[0] != 6 {
		t.Fatalf("Total sum = %v", got)
	}
}

func TestPrefixMatchesPaperExample(t *testing.T) {
	// Paper Example 7.1: 5x5 lower-triangular ones.
	m := Prefix(5)
	d := Materialize(m)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if j <= i {
				want = 1
			}
			if d.At(i, j) != want {
				t.Fatalf("Prefix[%d][%d] = %v, want %v", i, j, d.At(i, j), want)
			}
		}
	}
	checkAgainstDense(t, m, 3)
}

func TestSuffixIsPrefixTranspose(t *testing.T) {
	if !Equal(Suffix(7), T(Prefix(7)), 0) {
		t.Fatal("Suffix != Prefixᵀ")
	}
	checkAgainstDense(t, Suffix(6), 3)
}

func TestWaveletAgainstDense(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		checkAgainstDense(t, Wavelet(n), 3)
	}
}

func TestWaveletTotalRow(t *testing.T) {
	// Row 0 of the averaging Haar transform is the overall mean.
	w := Wavelet(8)
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := Mul(w, x)
	if math.Abs(y[0]-4.5) > 1e-12 {
		t.Fatalf("wavelet row 0 = %v, want mean 4.5", y[0])
	}
}

func TestWaveletAbsSqrMatchDense(t *testing.T) {
	for _, n := range []int{2, 4, 16} {
		w := Wavelet(n)
		d := Materialize(w)
		if !Equal(Abs(w), d.Abs(), 1e-12) {
			t.Fatalf("wavelet abs mismatch at n=%d", n)
		}
		if !Equal(Sqr(w), d.Sqr(), 1e-12) {
			t.Fatalf("wavelet sqr mismatch at n=%d", n)
		}
	}
}

func TestWaveletRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wavelet(6) did not panic")
		}
	}()
	Wavelet(6)
}

func TestDenseMatVec(t *testing.T) {
	d := DenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := Mul(d, []float64{1, -1})
	want := []float64{-1, -1, -1}
	if !vec.AllClose(got, want, 0, 0) {
		t.Fatalf("dense matvec = %v, want %v", got, want)
	}
	gotT := TMul(d, []float64{1, 1, 1})
	if !vec.AllClose(gotT, []float64{9, 12}, 0, 0) {
		t.Fatalf("dense tmatvec = %v", gotT)
	}
}

func TestSparseAgainstDense(t *testing.T) {
	rng := testRand()
	for trial := 0; trial < 10; trial++ {
		r := 1 + rng.IntN(8)
		c := 1 + rng.IntN(8)
		d := NewDense(r, c, nil)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if rng.Float64() < 0.4 {
					d.Set(i, j, rng.Float64()*4-2)
				}
			}
		}
		s := SparseFromDense(d)
		if !Equal(s, d, 1e-12) {
			t.Fatalf("sparse != dense (trial %d)", trial)
		}
		checkAgainstDense(t, s, 2)
	}
}

func TestSparseDuplicateTripletsSum(t *testing.T) {
	s := NewSparse(2, 2, []Triplet{{0, 0, 1}, {0, 0, 2}, {1, 1, -3}, {1, 1, 3}})
	d := Materialize(s)
	if d.At(0, 0) != 3 {
		t.Fatalf("duplicate sum = %v, want 3", d.At(0, 0))
	}
	if d.At(1, 1) != 0 || s.NNZ() != 1 {
		t.Fatalf("zero-sum entry kept: nnz=%d", s.NNZ())
	}
}

func TestSparseTransposed(t *testing.T) {
	s := NewSparse(3, 2, []Triplet{{0, 1, 2}, {2, 0, -1}})
	if !Equal(s.Transposed(), T(s), 0) {
		t.Fatal("Transposed() != lazy transpose")
	}
}

func TestVStackAgainstDense(t *testing.T) {
	m := VStack(Identity(4), Total(4), Prefix(4))
	r, c := m.Dims()
	if r != 9 || c != 4 {
		t.Fatalf("VStack dims = %dx%d", r, c)
	}
	checkAgainstDense(t, m, 5)
}

func TestVStackColumnMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VStack with mismatched columns did not panic")
		}
	}()
	VStack(Identity(3), Identity(4))
}

func TestProductAgainstDense(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 0, 2}, {0, 1, -1}})
	b := DenseFromRows([][]float64{{1, 1}, {2, 0}, {0, 3}})
	p := Product(a, b)
	checkAgainstDense(t, p, 5)
	// Verify against hand-computed product.
	d := Materialize(p)
	want := DenseFromRows([][]float64{{1, 7}, {2, -3}})
	if !Equal(d, want, 1e-12) {
		t.Fatalf("product = %v", d)
	}
}

func TestKroneckerAgainstDense(t *testing.T) {
	rng := testRand()
	for trial := 0; trial < 6; trial++ {
		ar, ac := 1+rng.IntN(4), 1+rng.IntN(4)
		br, bc := 1+rng.IntN(4), 1+rng.IntN(4)
		a := NewDense(ar, ac, nil)
		b := NewDense(br, bc, nil)
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()*2 - 1
		}
		for i := range b.Data() {
			b.Data()[i] = rng.Float64()*2 - 1
		}
		k := Kron(a, b)
		// Reference: definition 7.2 materialization.
		want := NewDense(ar*br, ac*bc, nil)
		for i1 := 0; i1 < ar; i1++ {
			for i2 := 0; i2 < br; i2++ {
				for j1 := 0; j1 < ac; j1++ {
					for j2 := 0; j2 < bc; j2++ {
						want.Set(i1*br+i2, j1*bc+j2, a.At(i1, j1)*b.At(i2, j2))
					}
				}
			}
		}
		if !Equal(k, want, 1e-12) {
			t.Fatalf("kron mismatch trial %d", trial)
		}
		checkAgainstDense(t, k, 2)
	}
}

func TestKronThreeFactors(t *testing.T) {
	k := Kron(Identity(2), Total(3), Prefix(2))
	r, c := k.Dims()
	if r != 2*1*2 || c != 2*3*2 {
		t.Fatalf("kron dims = %dx%d", r, c)
	}
	checkAgainstDense(t, k, 4)
}

func TestKronAbsSqrDistribute(t *testing.T) {
	a := DenseFromRows([][]float64{{1, -2}, {-3, 4}})
	b := DenseFromRows([][]float64{{-1, 0.5}})
	k := Kron(a, b)
	if !Equal(Abs(k), Materialize(k).Abs(), 1e-12) {
		t.Fatal("kron abs mismatch")
	}
	if !Equal(Sqr(k), Materialize(k).Sqr(), 1e-12) {
		t.Fatal("kron sqr mismatch")
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := Prefix(4)
	if T(T(m)) != Matrix(m) {
		t.Fatal("double transpose did not unwrap")
	}
	checkAgainstDense(t, T(m), 3)
}

func TestScaledAndDiag(t *testing.T) {
	checkAgainstDense(t, Scaled(-2.5, Prefix(4)), 3)
	checkAgainstDense(t, Diag([]float64{1, -2, 0, 3}), 3)
	if !Equal(Abs(Scaled(-2, Identity(3))), Scaled(2, Identity(3)), 0) {
		t.Fatal("scaled abs mismatch")
	}
}

func TestRowScaled(t *testing.T) {
	m := RowScaled([]float64{2, 0, -1}, Ones(3, 2))
	d := Materialize(m)
	want := DenseFromRows([][]float64{{2, 2}, {0, 0}, {-1, -1}})
	if !Equal(d, want, 0) {
		t.Fatalf("rowscaled = %v", d)
	}
	checkAgainstDense(t, m, 3)
	if !Equal(Abs(m), Materialize(m).Abs(), 1e-12) {
		t.Fatal("rowscaled abs mismatch")
	}
	if !Equal(Sqr(m), Materialize(m).Sqr(), 1e-12) {
		t.Fatal("rowscaled sqr mismatch")
	}
}

func TestL1SensitivityKnownCases(t *testing.T) {
	cases := []struct {
		name string
		m    Matrix
		want float64
	}{
		{"identity", Identity(8), 1},
		{"total", Total(8), 1},
		{"prefix", Prefix(8), 8}, // first column appears in every prefix
		{"identity+total", VStack(Identity(8), Total(8)), 2},
		{"ones3x4", Ones(3, 4), 3},
		{"scaled", Scaled(-3, Identity(4)), 3},
	}
	for _, c := range cases {
		if got := L1Sensitivity(c.m); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("L1Sensitivity(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestL2SensitivityKnownCases(t *testing.T) {
	if got := L2Sensitivity(Identity(5)); math.Abs(got-1) > 1e-12 {
		t.Errorf("L2(identity) = %v", got)
	}
	if got := L2Sensitivity(Prefix(4)); math.Abs(got-2) > 1e-12 {
		t.Errorf("L2(prefix4) = %v, want 2", got)
	}
}

func TestSensitivityMatchesBruteForce(t *testing.T) {
	rng := testRand()
	for trial := 0; trial < 8; trial++ {
		r, c := 1+rng.IntN(6), 1+rng.IntN(6)
		d := NewDense(r, c, nil)
		for i := range d.Data() {
			d.Data()[i] = rng.Float64()*4 - 2
		}
		// Brute-force column norms.
		var wantL1, wantL2 float64
		for j := 0; j < c; j++ {
			var s1, s2 float64
			for i := 0; i < r; i++ {
				s1 += math.Abs(d.At(i, j))
				s2 += d.At(i, j) * d.At(i, j)
			}
			if s1 > wantL1 {
				wantL1 = s1
			}
			if math.Sqrt(s2) > wantL2 {
				wantL2 = math.Sqrt(s2)
			}
		}
		if got := L1Sensitivity(d); math.Abs(got-wantL1) > 1e-9 {
			t.Fatalf("L1 = %v, want %v", got, wantL1)
		}
		if got := L2Sensitivity(d); math.Abs(got-wantL2) > 1e-9 {
			t.Fatalf("L2 = %v, want %v", got, wantL2)
		}
	}
}

func TestRowIndexing(t *testing.T) {
	m := Prefix(5)
	row2 := Row(m, 2)
	want := []float64{1, 1, 1, 0, 0}
	if !vec.AllClose(row2, want, 0, 0) {
		t.Fatalf("Row(prefix, 2) = %v", row2)
	}
}

func TestGram(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	g := Gram(m)
	want := DenseFromRows([][]float64{{10, 14}, {14, 20}})
	if !Equal(g, want, 1e-12) {
		t.Fatalf("gram = %v", g)
	}
}

// TestAdjointProperty checks ⟨Mx, y⟩ = ⟨x, Mᵀy⟩ for every constructor,
// the defining property tying MatVec and TMatVec together.
func TestAdjointProperty(t *testing.T) {
	rng := testRand()
	mats := map[string]Matrix{
		"identity": Identity(6),
		"ones":     Ones(4, 6),
		"prefix":   Prefix(6),
		"suffix":   Suffix(6),
		"wavelet":  Wavelet(8),
		"vstack":   VStack(Identity(6), Prefix(6)),
		"product":  Product(Ones(3, 6), Prefix(6)),
		"kron":     Kron(Prefix(2), Identity(3)),
		"diag":     Diag([]float64{1, 2, 3, 4, 5, 6}),
		"sparse":   NewSparse(3, 6, []Triplet{{0, 0, 1}, {1, 3, -2}, {2, 5, 4}}),
	}
	for name, m := range mats {
		r, c := m.Dims()
		for k := 0; k < 5; k++ {
			x := randVec(rng, c)
			y := randVec(rng, r)
			lhs := vec.Dot(Mul(m, x), y)
			rhs := vec.Dot(x, TMul(m, y))
			if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
				t.Errorf("%s: adjoint violated: %v vs %v", name, lhs, rhs)
			}
		}
	}
}

// TestPrefixLinearityQuick property-tests prefix linearity with
// testing/quick: Prefix(ax+by) = a·Prefix(x) + b·Prefix(y).
func TestPrefixLinearityQuick(t *testing.T) {
	m := Prefix(16)
	f := func(seed uint64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		rng := rand.New(rand.NewPCG(seed, 1))
		x := randVec(rng, 16)
		y := randVec(rng, 16)
		z := make([]float64, 16)
		for i := range z {
			z[i] = a*x[i] + b*y[i]
		}
		got := Mul(m, z)
		px, py := Mul(m, x), Mul(m, y)
		for i := range got {
			want := a*px[i] + b*py[i]
			if math.Abs(got[i]-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestKroneckerMixedProperty property-tests (A⊗B)(x⊗y) = (Ax)⊗(By).
func TestKroneckerMixedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		a := Prefix(3)
		b := Identity(4)
		x := randVec(rng, 3)
		y := randVec(rng, 4)
		xy := make([]float64, 12)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				xy[i*4+j] = x[i] * y[j]
			}
		}
		got := Mul(Kron(a, b), xy)
		ax, by := Mul(a, x), Mul(b, y)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				want := ax[i] * by[j]
				if math.Abs(got[i*4+j]-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	m := VStack(Identity(3), Total(3))
	d := Materialize(m)
	s := SparseFromDense(d)
	if !Equal(m, s, 0) {
		t.Fatal("materialize/sparse round trip failed")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	m := Identity(3)
	for _, fn := range []func(){
		func() { m.MatVec(make([]float64, 3), make([]float64, 4)) },
		func() { m.TMatVec(make([]float64, 2), make([]float64, 3)) },
		func() { Product(Identity(3), Identity(4)) },
		func() { Row(m, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on dimension mismatch")
				}
			}()
			fn()
		}()
	}
}
