package repro

// End-to-end integration tests: the README/§2.1 pipeline from a raw
// table through table transforms, partition selection, measurement and
// inference — the full stack that the per-package unit tests cover
// piecewise.

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core/inference"
	"repro/internal/core/partition"
	"repro/internal/core/plans"
	"repro/internal/core/selection"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/noise"
	"repro/internal/solver"
	"repro/internal/vec"
)

func TestQuickstartPipeline(t *testing.T) {
	const eps = 1.0
	table := dataset.Census(42)
	k, root := kernel.InitTable(table, eps, noise.NewRand(7))

	filtered := root.Where(dataset.Predicate{dataset.Eq("gender", 0), dataset.Eq("age", 1)})
	income := filtered.Select("income")
	x := income.Vectorize()
	n := x.Domain()
	if n != 5000 {
		t.Fatalf("income domain = %d", n)
	}

	noisy, _, err := x.VectorLaplace(selection.Identity(n), eps/2)
	if err != nil {
		t.Fatal(err)
	}
	p := partition.AHPCluster(noisy, 0.35, eps/2)
	if p.K <= 0 || p.K >= n {
		t.Fatalf("AHP groups = %d", p.K)
	}
	reduced := x.ReduceByPartition(p.Matrix())
	strategy := selection.Identity(p.K)
	y, scale, err := reduced.VectorLaplace(strategy, eps/2)
	if err != nil {
		t.Fatal(err)
	}
	ms := inference.NewMeasurements(n)
	ms.Add(reduced.MapTo(x, strategy), y, scale)
	xhat := ms.NNLS(solver.Options{MaxIter: 600})
	cdf := mat.Mul(mat.Prefix(n), xhat)

	// Privacy: exactly ε consumed, and the budget is then exhausted.
	if math.Abs(k.Consumed()-eps) > 1e-9 {
		t.Fatalf("consumed = %v, want %v", k.Consumed(), eps)
	}
	if _, _, err := x.VectorLaplace(selection.Identity(n), 0.01); !errors.Is(err, kernel.ErrBudgetExceeded) {
		t.Fatal("budget not exhausted after the plan")
	}

	// Utility sanity: the CDF is non-decreasing and its total is within
	// noise of the true sub-population size.
	trueCount := float64(table.Where(dataset.Predicate{dataset.Eq("gender", 0), dataset.Eq("age", 1)}).NumRows())
	for i := 1; i < n; i++ {
		if cdf[i] < cdf[i-1]-1e-6 {
			t.Fatalf("CDF decreases at %d", i)
		}
	}
	if math.Abs(cdf[n-1]-trueCount) > 0.3*trueCount {
		t.Fatalf("CDF total %v far from true count %v", cdf[n-1], trueCount)
	}
}

func TestRegistryPlansAreRunnable(t *testing.T) {
	// Every 1-D plan named in the Fig. 2 registry must be exercisable
	// through the library against a real kernel.
	n := 64
	x := dataset.Synthetic1D("gauss-mix", n, 10000, 3)
	total := vec.Sum(x)
	rng := noise.NewRand(17)
	w := func() *mat.RangeQueriesMat {
		ranges := make([]mat.Range1D, 20)
		for i := range ranges {
			a, b := rng.IntN(n), rng.IntN(n)
			if a > b {
				a, b = b, a
			}
			ranges[i] = mat.Range1D{Lo: a, Hi: b}
		}
		return mat.RangeQueries(n, ranges)
	}()

	runners := map[string]func(h *kernel.Handle) ([]float64, error){
		"Identity":              func(h *kernel.Handle) ([]float64, error) { return plans.Identity(h, 1) },
		"Privelet":              func(h *kernel.Handle) ([]float64, error) { return plans.Privelet(h, 1) },
		"Hierarchical (H2)":     func(h *kernel.Handle) ([]float64, error) { return plans.H2(h, 1) },
		"Hierarchical Opt (HB)": func(h *kernel.Handle) ([]float64, error) { return plans.HB(h, 1) },
		"Greedy-H": func(h *kernel.Handle) ([]float64, error) {
			return plans.GreedyH(h, w.Ranges1D(), 1)
		},
		"Uniform": func(h *kernel.Handle) ([]float64, error) { return plans.Uniform(h, 1) },
		"MWEM": func(h *kernel.Handle) ([]float64, error) {
			return plans.MWEM(h, w, 1, plans.MWEMConfig{Rounds: 3, Total: total})
		},
		"AHP":  func(h *kernel.Handle) ([]float64, error) { return plans.AHP(h, 1, plans.AHPConfig{}) },
		"DAWA": func(h *kernel.Handle) ([]float64, error) { return plans.DAWA(h, 1, plans.DAWAConfig{}) },
		"HDMM": func(h *kernel.Handle) ([]float64, error) {
			return plans.HDMM(h, []mat.Matrix{mat.Prefix(n)}, 1, noise.NewRand(5))
		},
		"MWEM variant b": func(h *kernel.Handle) ([]float64, error) {
			return plans.MWEM(h, w, 1, plans.MWEMConfig{Rounds: 3, Total: total, AugmentH2: true})
		},
		"MWEM variant c": func(h *kernel.Handle) ([]float64, error) {
			return plans.MWEM(h, w, 1, plans.MWEMConfig{Rounds: 3, Total: total, UseNNLS: true})
		},
		"MWEM variant d": func(h *kernel.Handle) ([]float64, error) {
			return plans.MWEM(h, w, 1, plans.MWEMConfig{Rounds: 3, Total: total, AugmentH2: true, UseNNLS: true})
		},
	}
	for name, run := range runners {
		if _, ok := plans.ByName(name); !ok {
			t.Errorf("%s not in the Fig. 2 registry", name)
			continue
		}
		k, h := kernel.InitVector(x, 1, noise.NewRand(23))
		got, err := run(h)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(got) != n {
			t.Errorf("%s: output length %d", name, len(got))
		}
		if k.Consumed() > 1+1e-9 {
			t.Errorf("%s overspent: %v", name, k.Consumed())
		}
	}
}

func TestEndToEndWorkloadReductionPipeline(t *testing.T) {
	// Table -> vectorize -> workload reduction -> plan -> answers, all
	// through the kernel, with correct budget accounting.
	tbl := dataset.CreditDefault(5)
	k, root := kernel.InitTable(tbl, 1.0, noise.NewRand(29))
	v := root.Select("age").Vectorize()
	n := v.Domain()
	rng := noise.NewRand(31)
	ranges := make([]mat.Range1D, 10)
	for i := range ranges {
		lo := rng.IntN(n - 4)
		ranges[i] = mat.Range1D{Lo: lo, Hi: lo + 3}
	}
	w := mat.RangeQueries(n, ranges)
	answers, p, err := plans.WithWorkloadReduction(v, w, noise.NewRand(37), func(hr *kernel.Handle) ([]float64, error) {
		return plans.HB(hr, 1.0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.K >= n {
		t.Fatal("no reduction achieved")
	}
	if len(answers) != 10 {
		t.Fatalf("answers = %d", len(answers))
	}
	if math.Abs(k.Consumed()-1.0) > 1e-9 {
		t.Fatalf("consumed = %v", k.Consumed())
	}
}
