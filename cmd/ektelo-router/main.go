// Command ektelo-router fronts a sharded ektelo-serve cluster: a thin
// reverse proxy that places every dataset on a consistent-hash ring
// over the topology's backends and routes accordingly — writes
// (create/measure/plan) to the dataset's single ring primary, reads
// (summary/budget/query) fanned across its ready replicas with
// least-inflight ordering and retry-on-next for idempotent reads.
// Health probes (/healthz + /v1/status on every backend) drive the
// readiness view; when a primary is down its datasets keep serving
// reads from the freshest replica with explicit staleness headers
// (X-Ektelo-Stale, X-Ektelo-Generation) while writes fail with 503 —
// the router never elects a second writer, so per-dataset budget
// accounting cannot fork.
//
// Usage:
//
//	ektelo-router -topology FILE [-addr :8198] [-probe-interval 500ms]
//
// The topology file is static JSON membership:
//
//	{
//	  "replicas": 1,
//	  "backends": [
//	    {"name": "serve-a", "addr": "http://127.0.0.1:8201"},
//	    {"name": "serve-b", "addr": "http://127.0.0.1:8202"},
//	    {"name": "serve-c", "addr": "http://127.0.0.1:8203"}
//	  ]
//	}
//
// Each backend is an ektelo-serve process started with the same
// topology and its own -self name, which makes it host read replicas
// for the datasets the ring places on it. The router adds
//
//	GET /healthz            — router liveness
//	GET /v1/cluster/status  — per-backend readiness, request/latency
//	                          accounting, and dataset placements
//
// on top of the proxied serve API. See internal/cluster for the
// routing, replication and failover semantics, and the README's
// "Running a cluster" walkthrough for a full session.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8198", "listen address")
	topologyPath := flag.String("topology", "", "cluster topology file (required)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "backend health-probe spacing")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "in-flight request deadline on SIGINT/SIGTERM")
	flag.Parse()

	if *topologyPath == "" {
		log.Fatal("-topology is required")
	}
	topo, err := cluster.LoadTopology(*topologyPath)
	if err != nil {
		log.Fatal(err)
	}
	r, err := cluster.NewRouter(topo, cluster.Options{ProbeInterval: *probeInterval})
	if err != nil {
		log.Fatal(err)
	}
	r.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("ektelo-router listening on %s (%d backends, %d replicas per dataset)",
			*addr, len(topo.Backends), topo.Replicas)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		r.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("ektelo-router shutting down (grace %v)", *shutdownGrace)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	r.Close()
	log.Printf("ektelo-router stopped")
}
