// Command ektelo-lint runs the project's invariant checkers — custom
// static analyzers that each mechanize a bug class a past PR fixed by
// hand (see internal/analysis) — over the module's packages.
//
// Usage:
//
//	go run ./cmd/ektelo-lint [flags] [./... | ./internal/... | ./cmd/... | dir ...]
//
// With no patterns it analyzes ./internal/... and ./cmd/... (what
// "./..." also means here). The tool is dependency-free: packages are
// loaded with go/parser + go/types and the stdlib source importer.
//
// Flags:
//
//	-json      emit the machine-readable report (schema below) to stdout
//	-group     group text findings by analyzer (CI-log friendly)
//	-enable    comma-separated analyzer names to run (default: all)
//	-disable   comma-separated analyzer names to skip
//	-list      print the analyzer inventory and exit
//	-waived    also print findings suppressed by //lint:ignore waivers
//
// Exit status: 0 when no active findings (waived ones don't count),
// 1 when findings exist, 2 on a usage or load error.
//
// JSON schema (version 1):
//
//	{
//	  "version": 1,
//	  "module": "repro",
//	  "packages": 23,
//	  "findings": [
//	    {"analyzer": "nansafe", "file": "internal/noise/noise.go",
//	     "line": 48, "col": 5, "message": "...",
//	     "waived": false, "waive_reason": ""}
//	  ],
//	  "counts": {"nansafe": 1},
//	  "active": 1,
//	  "waived": 0
//	}
//
// Waivers: a deliberate finding is suppressed in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory and
// reasonless, unknown-analyzer or no-longer-suppressing waivers are
// findings themselves. Range-over-map statements additionally accept
// //lint:sorted (see the mapdeterminism analyzer).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut    = flag.Bool("json", false, "emit the machine-readable JSON report")
		group      = flag.Bool("group", false, "group text findings by analyzer (CI-log friendly)")
		enable     = flag.String("enable", "", "comma-separated analyzer names to run (default: all)")
		disable    = flag.String("disable", "", "comma-separated analyzer names to skip")
		list       = flag.Bool("list", false, "print the analyzer inventory and exit")
		showWaived = flag.Bool("waived", false, "also print waived findings in text output")
	)
	flag.Parse()

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ektelo-lint:", err)
		return 2
	}
	all := analysis.Default(loader.Module)
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, allEnabled, err := selectAnalyzers(all, *enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ektelo-lint:", err)
		return 2
	}

	roots, err := patternRoots(loader, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ektelo-lint:", err)
		return 2
	}
	pkgs, err := loader.LoadTree(roots...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ektelo-lint:", err)
		return 2
	}

	knownNames := make([]string, 0, len(all))
	for _, a := range all {
		knownNames = append(knownNames, a.Name)
	}
	diags := analysis.Run(pkgs, analyzers, allEnabled, knownNames)
	active, waived := 0, 0
	for _, d := range diags {
		if d.Waived {
			waived++
		} else {
			active++
		}
	}

	switch {
	case *jsonOut:
		emitJSON(loader.Module, len(pkgs), diags, active, waived)
	case *group:
		emitGrouped(analyzers, diags, *showWaived)
	default:
		for _, d := range diags {
			if d.Waived && !*showWaived {
				continue
			}
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "ektelo-lint: %d package(s), %d finding(s), %d waived\n", len(pkgs), active, waived)
	}
	if active > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable; allEnabled reports whether
// the full default set runs (gates the unused-waiver check).
func selectAnalyzers(all []*analysis.Analyzer, enable, disable string) ([]*analysis.Analyzer, bool, error) {
	names := func(csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		m := map[string]bool{}
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			found := false
			for _, a := range all {
				if a.Name == n {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
			}
			m[n] = true
		}
		return m, nil
	}
	en, err := names(enable)
	if err != nil {
		return nil, false, err
	}
	dis, err := names(disable)
	if err != nil {
		return nil, false, err
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if en != nil && !en[a.Name] {
			continue
		}
		if dis[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf("no analyzers selected")
	}
	return out, len(out) == len(all), nil
}

// patternRoots maps go-style package patterns to module-relative walk
// roots. Supported: "./..." (internal + cmd), "./<dir>/..." and plain
// directories.
func patternRoots(loader *analysis.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return []string{"internal", "cmd"}, nil
	}
	var roots []string
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			roots = append(roots, "internal", "cmd")
		case strings.HasSuffix(arg, "/..."):
			roots = append(roots, strings.TrimPrefix(strings.TrimSuffix(arg, "/..."), "./"))
		default:
			rel := strings.TrimPrefix(arg, "./")
			if filepath.IsAbs(rel) {
				var err error
				rel, err = filepath.Rel(loader.Root, rel)
				if err != nil || strings.HasPrefix(rel, "..") {
					return nil, fmt.Errorf("directory %s is outside the module", arg)
				}
			}
			roots = append(roots, rel)
		}
	}
	sort.Strings(roots)
	return roots, nil
}

type jsonReport struct {
	Version  int                   `json:"version"`
	Module   string                `json:"module"`
	Packages int                   `json:"packages"`
	Findings []analysis.Diagnostic `json:"findings"`
	Counts   map[string]int        `json:"counts"`
	Active   int                   `json:"active"`
	Waived   int                   `json:"waived"`
}

func emitJSON(module string, pkgs int, diags []analysis.Diagnostic, active, waived int) {
	counts := map[string]int{}
	for _, d := range diags {
		if !d.Waived {
			counts[d.Analyzer]++
		}
	}
	if diags == nil {
		diags = []analysis.Diagnostic{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(jsonReport{
		Version:  1,
		Module:   module,
		Packages: pkgs,
		Findings: diags,
		Counts:   counts,
		Active:   active,
		Waived:   waived,
	})
}

// emitGrouped prints findings grouped by analyzer with per-analyzer
// headers and counts — the diff-friendly CI-log mode: two runs'
// outputs line up per analyzer regardless of interleaving.
func emitGrouped(analyzers []*analysis.Analyzer, diags []analysis.Diagnostic, showWaived bool) {
	names := make([]string, 0, len(analyzers)+1)
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	names = append(names, "waiver")
	for _, name := range names {
		var sel []analysis.Diagnostic
		waivedN := 0
		for _, d := range diags {
			if d.Analyzer != name {
				continue
			}
			if d.Waived {
				waivedN++
				if !showWaived {
					continue
				}
			}
			sel = append(sel, d)
		}
		if len(sel) == 0 && waivedN == 0 {
			continue
		}
		fmt.Printf("== %s: %d finding(s), %d waived\n", name, len(sel)-countWaived(sel), waivedN)
		for _, d := range sel {
			fmt.Println("  " + d.String())
		}
	}
}

func countWaived(diags []analysis.Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Waived {
			n++
		}
	}
	return n
}
