// Command ektelo-bench regenerates the tables and figures of the EKTELO
// paper's evaluation (§10) on the synthetic substitute datasets.
//
// Usage:
//
//	ektelo-bench -exp table4|table5|table6|fig3|fig4a|fig4b|fig5|matvec|gram|serve|sweep|incremental|wal|cluster|all [-full] [-json FILE] [-par N,M]
//
// Without -full the quick configurations run (small domains, seconds);
// with -full the paper-scale configurations run (up to the 1.4M-cell
// Census domain; minutes). The matvec experiment benchmarks the shared
// parallel mat-vec engine, the gram experiment benchmarks the blocked
// Gram kernels against the column-at-a-time baseline, the serve
// experiment load-tests the ektelo-serve query front end at 1 vs N
// parallel clients (-par doubles as the client-count list), the sweep
// experiment prices one strategy across a multi-epsilon grid in a
// single LSMRMulti/NNLSMulti panel solve vs per-column scalar solves,
// and the incremental experiment measures an MWEM/DAWA-style
// append-query loop on the warm (incremental) vs forced-cold refresh
// path, and the wal experiment counts the durable bytes per measurement
// commit on the write-ahead-log backend vs the legacy full-snapshot
// rewrite (with a restart bit-identity check), and the cluster
// experiment drives a three-backend sharded serve cluster (router +
// WAL-shipped read replicas) through read fan-out, replication-lag and
// failover measurements; with -json each records its report
// (BENCH_1..8.json) so the perf trajectory is tracked in-repo.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

var (
	jsonOut  = flag.String("json", "", "write the matvec/gram benchmark report to this file as JSON")
	parList  = flag.String("par", "4", "comma-separated parallelism levels for the matvec and gram experiments (1 is always included)")
	planMode = flag.Bool("plan", false, "serve experiment only: drive plan-mode measurement + cached-vs-uncached query load (BENCH_5.json)")
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table4, table5, table6, fig3, fig4a, fig4b, fig5, matvec, all")
	full := flag.Bool("full", false, "run the paper-scale configuration instead of the quick one")
	flag.Parse()

	runners := map[string]func(bool){
		"table4":      runTable4,
		"table5":      runTable5,
		"table6":      runTable6,
		"fig3":        runFig3,
		"fig4a":       runFig4a,
		"fig4b":       runFig4b,
		"fig5":        runFig5,
		"matvec":      runMatVec,
		"gram":        runGram,
		"serve":       runServe,
		"sweep":       runSweep,
		"incremental": runIncremental,
		"wal":         runWAL,
		"cluster":     runCluster,
	}
	order := []string{"table4", "table5", "fig3", "fig4a", "fig4b", "fig5", "table6", "matvec", "gram", "serve", "sweep", "incremental", "wal", "cluster"}

	if *exp == "all" {
		// The benchmark experiments would write the same -json file in
		// turn, the later clobbering the earlier; require a specific one.
		if *jsonOut != "" {
			fmt.Fprintln(os.Stderr, "-json requires a single benchmark experiment (matvec, gram, serve, sweep, incremental or wal), not -exp all")
			os.Exit(2)
		}
		for _, name := range order {
			runners[name](*full)
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	run(*full)
}

func banner(title string) func() {
	fmt.Printf("== %s ==\n", title)
	start := time.Now()
	return func() { fmt.Printf("(%s elapsed)\n\n", time.Since(start).Round(time.Millisecond)) }
}

func runTable4(full bool) {
	done := banner("Table 4: MWEM variants (error-improvement factors vs standard MWEM)")
	cfg := experiments.QuickTable4()
	if full {
		cfg = experiments.FullTable4()
	}
	fmt.Print(experiments.Table4String(experiments.Table4(cfg)))
	done()
}

func runTable5(full bool) {
	done := banner("Table 5: Census case study (scaled per-query L2 error)")
	cfg := experiments.QuickTable5()
	if full {
		cfg = experiments.FullTable5()
	}
	fmt.Print(experiments.Table5String(experiments.Table5(cfg)))
	done()
}

func runTable6(full bool) {
	done := banner("Table 6: workload-based domain reduction")
	cfg := experiments.QuickTable6()
	if full {
		cfg = experiments.FullTable6()
	}
	fmt.Print(experiments.Table6String(experiments.Table6(cfg)))
	done()
}

func runFig3(full bool) {
	done := banner("Figure 3: Naive Bayes classifier AUC vs privacy budget")
	cfg := experiments.QuickFig3()
	if full {
		cfg = experiments.FullFig3()
	}
	fmt.Print(experiments.Fig3String(experiments.Fig3(cfg)))
	done()
}

func runFig4a(full bool) {
	done := banner("Figure 4a: 1-D/2-D plan runtime by matrix representation")
	cfg := experiments.QuickFig4a()
	if full {
		cfg = experiments.FullFig4a()
	}
	fmt.Print(experiments.Fig4String(experiments.Fig4a(cfg)))
	done()
}

func runFig4b(full bool) {
	done := banner("Figure 4b: multi-dimensional plan runtime")
	cfg := experiments.QuickFig4b()
	if full {
		cfg = experiments.FullFig4b()
	}
	fmt.Print(experiments.Fig4String(experiments.Fig4b(cfg)))
	done()
}

func runFig5(full bool) {
	done := banner("Figure 5: inference scalability")
	cfg := experiments.QuickFig5()
	if full {
		cfg = experiments.FullFig5()
	}
	fmt.Print(experiments.Fig5String(experiments.Fig5(cfg)))
	done()
}

// parLevels parses the -par flag.
func parLevels() []int {
	var levels []int
	for _, f := range strings.Split(*parList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -par entry %q\n", f)
			os.Exit(2)
		}
		levels = append(levels, n)
	}
	return levels
}

// writeJSONReport writes a benchmark report to -json when set.
func writeJSONReport(rep any) {
	if *jsonOut == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal report: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *jsonOut)
}

func runMatVec(bool) {
	done := banner("Mat-vec engine: serial vs parallel on 2^20-cell matrices")
	rep := experiments.MatVecBench(parLevels())
	fmt.Print(experiments.MatVecBenchString(rep))
	writeJSONReport(rep)
	done()
}

func runGram(bool) {
	done := banner("Blocked Gram: panel kernels vs column-at-a-time baseline")
	rep := experiments.GramBench(parLevels())
	fmt.Print(experiments.GramBenchString(rep))
	writeJSONReport(rep)
	done()
}

func runServe(bool) {
	if *planMode {
		done := banner("Serve front end: plan-mode measurement + cached-vs-uncached query load")
		rep := experiments.ServePlanBench(parLevels())
		fmt.Print(experiments.ServePlanBenchString(rep))
		writeJSONReport(rep)
		done()
		return
	}
	done := banner("Serve front end: requests/sec at 1 vs N parallel clients")
	rep := experiments.ServeBench(parLevels())
	fmt.Print(experiments.ServeBenchString(rep))
	writeJSONReport(rep)
	done()
}

func runWAL(full bool) {
	done := banner("WAL persistence: durable bytes per commit vs full snapshot rewrites")
	rep := experiments.WALBench(full)
	fmt.Print(experiments.WALBenchString(rep))
	writeJSONReport(rep)
	done()
}

func runCluster(full bool) {
	done := banner("Sharded cluster: routed read fan-out, replication lag, failover")
	rep := experiments.ClusterBench(full)
	fmt.Print(experiments.ClusterBenchString(rep))
	writeJSONReport(rep)
	done()
}

func runIncremental(full bool) {
	done := banner("Incremental refresh: warm vs cold panel rebuild per appended generation")
	rep := experiments.IncrementalBench(full)
	fmt.Print(experiments.IncrementalBenchString(rep))
	writeJSONReport(rep)
	done()
}

func runSweep(full bool) {
	done := banner("Multi-epsilon sweep: one panel solve vs per-column scalar solves")
	cfg := experiments.QuickSweep()
	if full {
		cfg = experiments.FullSweep()
	}
	rep := experiments.SweepBench(cfg)
	fmt.Print(experiments.SweepBenchString(rep))
	writeJSONReport(rep)
	done()
}
