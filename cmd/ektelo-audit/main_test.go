package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestVerifierAgainstLiveServer drives the whole CLI flow against a
// real serve process: first run pins the key and head, later runs
// prove append-only growth, and a pin edited to disagree with the
// server (rewritten root, truncated size, swapped key) fails loudly.
func TestVerifierAgainstLiveServer(t *testing.T) {
	s := serve.New(serve.Config{BatchWindow: 100 * time.Microsecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	d, err := s.CreateDataset("census", "piecewise", 128, 5000, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Measure("hb", 1); err != nil {
		t.Fatal(err)
	}

	state := filepath.Join(t.TempDir(), "audit.census.json")
	verify := func() (int, string, string) {
		var out, errb bytes.Buffer
		code := run([]string{"-server", ts.URL, "-dataset", "census", "-state", state}, &out, &errb)
		return code, out.String(), errb.String()
	}

	// First run: trust on first use, pin written atomically.
	code, out, errOut := verify()
	if code != 0 {
		t.Fatalf("first run exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "signed tree head verified") || !strings.Contains(out, "OK") {
		t.Fatalf("first run output: %s", out)
	}
	pinned, err := os.ReadFile(state)
	if err != nil {
		t.Fatalf("pin not written: %v", err)
	}
	var pin pinState
	if err := json.Unmarshal(pinned, &pin); err != nil {
		t.Fatal(err)
	}
	if pin.Dataset != "census" || pin.Size == 0 || pin.PublicKey == "" {
		t.Fatalf("pin %+v", pin)
	}

	// More charges, second run: consistency proven from the pin.
	if _, err := d.Measure("total", 0.5); err != nil {
		t.Fatal(err)
	}
	code, out, errOut = verify()
	if code != 0 {
		t.Fatalf("second run exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "consistent extension") || !strings.Contains(out, "leaves proved included") {
		t.Fatalf("second run output: %s", out)
	}

	writePin := func(p pinState) {
		t.Helper()
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(state, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var good pinState
	data, _ := os.ReadFile(state)
	if err := json.Unmarshal(data, &good); err != nil {
		t.Fatal(err)
	}

	// Rewritten history: pin holds a different root at its size.
	bad := good
	bad.Root = strings.Repeat("ab", 32)
	writePin(bad)
	if code, _, errOut = verify(); code != 1 || !strings.Contains(errOut, "VERIFICATION FAILED") {
		t.Fatalf("rewritten-root pin: exit %d, stderr %s", code, errOut)
	}

	// Truncated tree: pin claims more leaves than the server serves.
	bad = good
	bad.Size = good.Size + 100
	writePin(bad)
	if code, _, errOut = verify(); code != 1 || !strings.Contains(errOut, "shrank") {
		t.Fatalf("truncation: exit %d, stderr %s", code, errOut)
	}

	// Swapped signing key: TOFU pin refuses the new identity.
	bad = good
	bad.PublicKey = strings.Repeat("cd", 32)
	writePin(bad)
	if code, _, errOut = verify(); code != 1 || !strings.Contains(errOut, "signing key changed") {
		t.Fatalf("key swap: exit %d, stderr %s", code, errOut)
	}

	// A failed run never advances the pin.
	after, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	var afterPin pinState
	if err := json.Unmarshal(after, &afterPin); err != nil {
		t.Fatal(err)
	}
	if afterPin.PublicKey != bad.PublicKey {
		t.Fatal("failed run rewrote the pin")
	}

	// Restore the good pin: verification recovers.
	writePin(good)
	if code, _, errOut = verify(); code != 0 {
		t.Fatalf("restored pin: exit %d, stderr %s", code, errOut)
	}
}

// TestVerifierUsage: flag errors are usage errors (exit 2), not
// verification failures.
func TestVerifierUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-server", "http://x"}, &out, &errb); code != 2 {
		t.Fatalf("missing -dataset: exit %d", code)
	}
	if !strings.Contains(errb.String(), "-dataset is required") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

// TestSampleIndices pins the spot-check spread: deterministic,
// bounded, always covering the first and latest leaf.
func TestSampleIndices(t *testing.T) {
	if got := sampleIndices(0, 8); got != nil {
		t.Fatalf("empty tree sampled: %v", got)
	}
	if got := sampleIndices(3, 8); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("small tree: %v", got)
	}
	got := sampleIndices(1000, 8)
	if len(got) != 8 || got[0] != 0 || got[len(got)-1] != 999 {
		t.Fatalf("spread: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not strictly increasing: %v", got)
		}
	}
}
