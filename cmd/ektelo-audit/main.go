// Command ektelo-audit is the client side of the serve tier's budget
// audit ledger: it fetches a dataset's signed tree head from a running
// ektelo-serve (or ektelo-router) process, verifies the signature,
// proves the new head is an append-only extension of the last head it
// saw, and spot-checks leaf inclusion — all with the same RFC
// 6962-style hashing the server uses, reimplemented on the client so a
// tampered server cannot vouch for itself.
//
// Usage:
//
//	ektelo-audit -server http://localhost:8199 -dataset census \
//	             [-state audit.census.json] [-samples 8]
//
// With -state the verifier keeps a trust-on-first-use pin: the first
// run records the dataset's signing key, tree size and root; every
// later run demands the same key, a size that has not shrunk, and a
// consistency proof from the pinned root to the new one. The state
// file is rewritten atomically only after every check passes, so an
// interrupted run never advances the pin. Any failure — a forged
// signature, a swapped key, a truncated tree, an edited leaf — exits
// nonzero with the reason on stderr.
//
// Verification needs only the serve audit endpoints:
//
//	GET /v1/datasets/{name}/audit/checkpoint
//	GET /v1/datasets/{name}/audit/proof?index=I&size=N
//	GET /v1/datasets/{name}/audit/consistency?from=M&to=N
package main

import (
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"repro/internal/audit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// pinState is the TOFU cache persisted by -state: the last verified
// tree head and the signing key it was verified against.
type pinState struct {
	Dataset   string `json:"dataset"`
	Size      uint64 `json:"size"`
	Root      string `json:"root"`
	PublicKey string `json:"public_key"`
}

// run is main's testable body: parses args, performs one verification
// pass, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ektelo-audit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://localhost:8199", "base URL of the serve process to audit")
	dataset := fs.String("dataset", "", "dataset name to audit (required)")
	statePath := fs.String("state", "", "TOFU pin file: cached key + last verified tree head (optional)")
	samples := fs.Int("samples", 8, "inclusion spot-checks against the new head (0 disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataset == "" {
		fmt.Fprintln(stderr, "ektelo-audit: -dataset is required")
		return 2
	}
	client := &http.Client{Timeout: *timeout}
	v := &verifier{client: client, base: *server, dataset: *dataset}

	prior, havePrior, err := loadPin(*statePath, *dataset)
	if err != nil {
		fmt.Fprintf(stderr, "ektelo-audit: %v\n", err)
		return 1
	}
	ckpt, err := v.verify(prior, havePrior, *samples, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "ektelo-audit: %s: VERIFICATION FAILED: %v\n", *dataset, err)
		return 1
	}
	if *statePath != "" {
		pin := pinState{Dataset: *dataset, Size: ckpt.Size, Root: ckpt.Root, PublicKey: ckpt.PublicKey}
		if err := savePin(*statePath, pin); err != nil {
			fmt.Fprintf(stderr, "ektelo-audit: save state: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "%s: OK size=%d root=%s\n", *dataset, ckpt.Size, ckpt.Root)
	return 0
}

// verifier performs one audit pass against a serve process.
type verifier struct {
	client  *http.Client
	base    string
	dataset string
}

// verify fetches the current signed tree head and checks it: the
// signature (against the pinned key when one exists), append-only
// consistency with the prior pinned head, and sampled leaf inclusion.
func (v *verifier) verify(prior pinState, havePrior bool, samples int, stdout io.Writer) (audit.Checkpoint, error) {
	var ckpt audit.Checkpoint
	if err := v.getJSON("/audit/checkpoint", nil, &ckpt); err != nil {
		return ckpt, err
	}
	if ckpt.Dataset != v.dataset {
		return ckpt, fmt.Errorf("checkpoint names dataset %q", ckpt.Dataset)
	}
	root, err := audit.ParseHash(ckpt.Root)
	if err != nil {
		return ckpt, fmt.Errorf("checkpoint root: %w", err)
	}
	pub, err := hex.DecodeString(ckpt.PublicKey)
	if err != nil || len(pub) != ed25519.PublicKeySize {
		return ckpt, errors.New("checkpoint carries a malformed public key")
	}
	sig, err := hex.DecodeString(ckpt.Signature)
	if err != nil {
		return ckpt, errors.New("checkpoint carries a malformed signature")
	}
	if havePrior && prior.PublicKey != ckpt.PublicKey {
		return ckpt, fmt.Errorf("signing key changed (pinned %s…, got %s…)", short(prior.PublicKey), short(ckpt.PublicKey))
	}
	if err := audit.VerifyCheckpoint(ed25519.PublicKey(pub), ckpt.Dataset, ckpt.Size, root, sig); err != nil {
		return ckpt, fmt.Errorf("tree head signature: %w", err)
	}
	fmt.Fprintf(stdout, "%s: signed tree head verified (size %d, key %s…)\n", v.dataset, ckpt.Size, short(ckpt.PublicKey))

	if havePrior {
		if err := v.verifyConsistency(prior, ckpt, root); err != nil {
			return ckpt, err
		}
		fmt.Fprintf(stdout, "%s: consistent extension of pinned head (size %d -> %d)\n", v.dataset, prior.Size, ckpt.Size)
	}
	if samples > 0 && ckpt.Size > 0 {
		n, err := v.spotCheck(ckpt, root, samples)
		if err != nil {
			return ckpt, err
		}
		fmt.Fprintf(stdout, "%s: %d/%d sampled leaves proved included\n", v.dataset, n, n)
	}
	return ckpt, nil
}

// verifyConsistency proves the fetched head extends the pinned one.
// A head smaller than the pin is history truncation and always fails.
func (v *verifier) verifyConsistency(prior pinState, ckpt audit.Checkpoint, root [audit.HashSize]byte) error {
	if ckpt.Size < prior.Size {
		return fmt.Errorf("tree shrank: pinned size %d, server reports %d (history truncated)", prior.Size, ckpt.Size)
	}
	priorRoot, err := audit.ParseHash(prior.Root)
	if err != nil {
		return fmt.Errorf("pinned root: %w", err)
	}
	if ckpt.Size == prior.Size {
		if ckpt.Root != prior.Root {
			return fmt.Errorf("root changed at unchanged size %d (history rewritten)", ckpt.Size)
		}
		return nil
	}
	if prior.Size == 0 {
		return nil // extending the empty tree is trivially consistent
	}
	var cons audit.ConsistencyResponse
	q := url.Values{"from": {fmt.Sprint(prior.Size)}, "to": {fmt.Sprint(ckpt.Size)}}
	if err := v.getJSON("/audit/consistency", q, &cons); err != nil {
		return err
	}
	if cons.From != prior.Size || cons.To != ckpt.Size {
		return fmt.Errorf("consistency proof answers sizes %d..%d, want %d..%d", cons.From, cons.To, prior.Size, ckpt.Size)
	}
	if cons.FromRoot != prior.Root {
		return fmt.Errorf("server's root at pinned size %d is %s, pin says %s (history rewritten)", prior.Size, cons.FromRoot, prior.Root)
	}
	if cons.ToRoot != ckpt.Root {
		return errors.New("consistency proof targets a different head than the signed checkpoint")
	}
	proof, err := audit.ParseHashes(cons.Proof)
	if err != nil {
		return fmt.Errorf("consistency proof: %w", err)
	}
	if err := audit.VerifyConsistency(prior.Size, ckpt.Size, priorRoot, root, proof); err != nil {
		return fmt.Errorf("consistency %d..%d: %w", prior.Size, ckpt.Size, err)
	}
	return nil
}

// spotCheck proves inclusion for up to `samples` leaves spread evenly
// across the tree (always including the first and the latest leaf).
// It returns how many distinct indices were checked.
func (v *verifier) spotCheck(ckpt audit.Checkpoint, root [audit.HashSize]byte, samples int) (int, error) {
	indices := sampleIndices(ckpt.Size, samples)
	for _, i := range indices {
		var inc audit.InclusionResponse
		q := url.Values{"index": {fmt.Sprint(i)}, "size": {fmt.Sprint(ckpt.Size)}}
		if err := v.getJSON("/audit/proof", q, &inc); err != nil {
			return 0, err
		}
		if inc.Index != i || inc.Size != ckpt.Size {
			return 0, fmt.Errorf("inclusion proof answers leaf %d of %d, want %d of %d", inc.Index, inc.Size, i, ckpt.Size)
		}
		if inc.Root != ckpt.Root {
			return 0, fmt.Errorf("inclusion proof for leaf %d targets a different head than the signed checkpoint", i)
		}
		leaf, err := audit.ParseHash(inc.Leaf)
		if err != nil {
			return 0, fmt.Errorf("leaf %d: %w", i, err)
		}
		proof, err := audit.ParseHashes(inc.Proof)
		if err != nil {
			return 0, fmt.Errorf("leaf %d proof: %w", i, err)
		}
		if err := audit.VerifyInclusion(leaf, i, ckpt.Size, proof, root); err != nil {
			return 0, fmt.Errorf("leaf %d inclusion: %w", i, err)
		}
	}
	return len(indices), nil
}

// sampleIndices picks up to k distinct indices in [0, size) spread
// evenly, first and last included. Deterministic so failures reproduce.
func sampleIndices(size uint64, k int) []uint64 {
	if size == 0 || k <= 0 {
		return nil
	}
	if uint64(k) >= size {
		out := make([]uint64, size)
		for i := range out {
			out[i] = uint64(i)
		}
		return out
	}
	out := make([]uint64, 0, k)
	for i := 0; i < k; i++ {
		idx := uint64(i) * (size - 1) / uint64(k-1)
		if n := len(out); n == 0 || out[n-1] != idx {
			out = append(out, idx)
		}
	}
	return out
}

// getJSON fetches one audit endpoint for the verifier's dataset and
// decodes the JSON body into v.
func (v *verifier) getJSON(suffix string, q url.Values, out any) error {
	u := v.base + "/v1/datasets/" + url.PathEscape(v.dataset) + suffix
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := v.client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", suffix, resp.Status, firstLine(body))
	}
	return json.Unmarshal(body, out)
}

// loadPin reads the TOFU state file. A missing file is a clean first
// run; a file pinned to a different dataset is an operator error.
func loadPin(path, dataset string) (pinState, bool, error) {
	if path == "" {
		return pinState{}, false, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return pinState{}, false, nil
	}
	if err != nil {
		return pinState{}, false, err
	}
	var pin pinState
	if err := json.Unmarshal(data, &pin); err != nil {
		return pinState{}, false, fmt.Errorf("state file %s: %w", path, err)
	}
	if pin.Dataset != dataset {
		return pinState{}, false, fmt.Errorf("state file %s pins dataset %q, not %q", path, pin.Dataset, dataset)
	}
	return pin, true, nil
}

// savePin writes the state file atomically (temp file + rename) so a
// crash mid-write never leaves a corrupt or half-advanced pin.
func savePin(path string, pin pinState) error {
	data, err := json.MarshalIndent(pin, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".audit-state-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func short(hexKey string) string {
	if len(hexKey) > 8 {
		return hexKey[:8]
	}
	return hexKey
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			b = b[:i]
			break
		}
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
