// Command ektelo-serve runs the EKTELO query service: an HTTP/JSON
// front end that keeps per-dataset vectorized state and measurement
// logs warm inside concurrent protected kernels and answers client
// range workloads through the batched MatMat/CGLSMulti panel tier.
//
// Usage:
//
//	ektelo-serve [-addr :8199] [-window 250us] [-replicates 3]
//	             [-solver lsmr|cgls|normal] [-state-dir DIR]
//	             [-plan-cache 256] [-preload name:kind:n:scale:seed:eps ...]
//
// The estimate panel behind every answer is solved by the block solver
// named with -solver: lsmr (solver.LSMRMulti, the paper's §7.6 solver;
// the default), cgls (solver.CGLSMulti), or normal (solver.NormalMulti
// over incrementally maintained normal-equation state — refreshes after
// new measurements cost O(delta rows) instead of a full re-solve, with
// answers bit-identical to a cold rebuild; see the internal/serve
// package docs). A dataset created over HTTP may override the choice
// per dataset with the "solver" field, and may set "damping" (lsmr and
// normal only) to a Tikhonov λ that regularizes ill-conditioned
// measurement logs. The iterative solvers also refresh incrementally:
// each refresh warm-starts from the previous generation's panel and
// stops at the cold solve's absolute convergence target.
//
// With -state-dir every measurement persists the dataset's log as a
// versioned snapshot under that directory, and re-creating a dataset
// name (preload included) restores the log and its spent budget, so a
// restarted server answers warm and cannot re-grant spent budget.
// -plan-cache bounds the per-dataset workload-answer cache (repeated
// workloads at one log generation are answered with zero solver and
// panel work); -1 disables it.
//
// The API (see internal/serve):
//
//	GET  /v1/plans                     — the Fig. 2 plan registry
//	GET  /v1/strategies                — measurement strategies
//	GET  /v1/datasets                  — dataset summaries
//	POST /v1/datasets                  — create a synthetic dataset
//	GET  /v1/datasets/{name}           — one dataset's summary
//	GET  /v1/datasets/{name}/budget    — remaining-budget report
//	POST /v1/datasets/{name}/measure   — spend budget on a strategy
//	                                     (or a plan, with "plan")
//	POST /v1/datasets/{name}/plan      — execute a Fig. 2 registry plan
//	POST /v1/datasets/{name}/query     — answer a range workload
//
// Example session (fixed strategy, then a full DAWA plan):
//
//	ektelo-serve -state-dir /var/lib/ektelo \
//	             -preload census:piecewise:4096:1000000:7:10 &
//	curl -s localhost:8199/v1/datasets/census/budget
//	curl -s -XPOST localhost:8199/v1/datasets/census/measure \
//	     -d '{"strategy":"hb","eps":1}'
//	curl -s -XPOST localhost:8199/v1/datasets/census/plan \
//	     -d '{"plan":"DAWA","eps":1}'
//	curl -s -XPOST localhost:8199/v1/datasets/census/query \
//	     -d '{"ranges":[[0,1023],[512,2047]]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8199", "listen address")
	window := flag.Duration("window", 250*time.Microsecond, "batcher coalescing window")
	maxBatch := flag.Int("maxbatch", 64, "max client requests per answering panel")
	replicates := flag.Int("replicates", 3, "bootstrap columns for per-answer error bars (-1 disables)")
	solverName := flag.String("solver", "lsmr",
		fmt.Sprintf("estimate-panel block solver %v; dataset creates may override per dataset", serve.Solvers()))
	stateDir := flag.String("state-dir", "", "persist measurement-log snapshots under this directory (restores on create)")
	planCache := flag.Int("plan-cache", 0, "workload-answer cache entries per dataset (0: default 256, -1: disabled)")
	var preloads preloadList
	flag.Var(&preloads, "preload", "preload dataset as name:kind:n:scale:seed:eps (repeatable)")
	flag.Parse()

	if !slices.Contains(serve.Solvers(), *solverName) {
		log.Fatalf("unknown -solver %q (have %v)", *solverName, serve.Solvers())
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			log.Fatalf("state dir: %v", err)
		}
	}
	s := serve.New(serve.Config{
		BatchWindow: *window,
		MaxBatch:    *maxBatch,
		Replicates:  *replicates,
		Solver:      *solverName,
		CacheSize:   *planCache,
		StateDir:    *stateDir,
	})
	defer s.Close()

	for _, p := range preloads {
		d, err := s.CreateDataset(p.name, p.kind, p.n, p.scale, p.seed, p.eps)
		if err != nil {
			log.Fatalf("preload %s: %v", p.name, err)
		}
		sum := d.Summary()
		log.Printf("preloaded dataset %q: domain %d, ε_total %g", sum.Name, sum.Domain, sum.EpsTotal)
	}

	log.Printf("ektelo-serve listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}

// preload is one -preload flag value.
type preload struct {
	name, kind string
	n          int
	scale, eps float64
	seed       uint64
}

type preloadList []preload

func (l *preloadList) String() string {
	parts := make([]string, len(*l))
	for i, p := range *l {
		parts[i] = p.name
	}
	return strings.Join(parts, ",")
}

func (l *preloadList) Set(v string) error {
	f := strings.Split(v, ":")
	if len(f) != 6 {
		return fmt.Errorf("want name:kind:n:scale:seed:eps, got %q", v)
	}
	n, err := strconv.Atoi(f[2])
	if err != nil {
		return fmt.Errorf("bad n %q", f[2])
	}
	scale, err := strconv.ParseFloat(f[3], 64)
	if err != nil {
		return fmt.Errorf("bad scale %q", f[3])
	}
	seed, err := strconv.ParseUint(f[4], 10, 64)
	if err != nil {
		return fmt.Errorf("bad seed %q", f[4])
	}
	eps, err := strconv.ParseFloat(f[5], 64)
	if err != nil {
		return fmt.Errorf("bad eps %q", f[5])
	}
	*l = append(*l, preload{name: f[0], kind: f[1], n: n, scale: scale, seed: seed, eps: eps})
	return nil
}
