// Command ektelo-serve runs the EKTELO query service: an HTTP/JSON
// front end that keeps per-dataset vectorized state and measurement
// logs warm inside concurrent protected kernels and answers client
// range workloads through the batched MatMat/CGLSMulti panel tier.
//
// Usage:
//
//	ektelo-serve [-addr :8199] [-window 250us] [-replicates 3]
//	             [-solver lsmr|cgls|normal|nnls] [-state-dir DIR]
//	             [-persist wal|snapshot] [-fsync always|interval|never]
//	             [-fsync-interval 100ms] [-checkpoint-every 64]
//	             [-repl-retain 128] [-shutdown-grace 10s]
//	             [-plan-cache 256] [-preload name:kind:n:scale:seed:eps ...]
//	             [-topology FILE -self NAME [-sync-interval 200ms]]
//
// The estimate panel behind every answer is solved by the block solver
// named with -solver: lsmr (solver.LSMRMulti, the paper's §7.6 solver;
// the default), cgls (solver.CGLSMulti), or normal (solver.NormalMulti
// over incrementally maintained normal-equation state — refreshes after
// new measurements cost O(delta rows) instead of a full re-solve, with
// answers bit-identical to a cold rebuild; see the internal/serve
// package docs). A dataset created over HTTP may override the choice
// per dataset with the "solver" field, and may set "damping" (lsmr and
// normal only) to a Tikhonov λ that regularizes ill-conditioned
// measurement logs. The iterative solvers also refresh incrementally:
// each refresh warm-starts from the previous generation's panel and
// stops at the cold solve's absolute convergence target.
//
// With -state-dir every measurement commit persists durably under that
// directory, and re-creating a dataset name (preload included) restores
// the log and its spent budget, so a restarted server answers
// bit-identically and cannot re-grant spent budget. The default
// -persist backend is "wal": each commit appends one CRC-framed record
// to a per-dataset write-ahead log (O(delta) bytes per commit) that is
// periodically compacted into a checkpoint (-checkpoint-every records);
// a torn log tail from a crash is truncated at the first bad frame on
// restart, never refused. -fsync picks the log durability policy
// (always per record, interval batched by -fsync-interval, or never);
// "snapshot" selects the legacy full-rewrite backend (its files load
// unmodified under "wal", so migration is automatic). On an
// unrecoverable disk error a dataset degrades to read-only — writes
// return 503 while queries keep serving from the warm panel.
// -plan-cache bounds the per-dataset workload-answer cache (repeated
// workloads at one log generation are answered with zero solver and
// panel work); -1 disables it.
//
// Every committed charge also appends a leaf to the dataset's
// append-only Merkle audit ledger, served as ed25519-signed tree heads
// with inclusion and consistency proofs under
// /v1/datasets/{name}/audit/ — verify externally with `ektelo-audit`.
// With -state-dir the signing key persists at <state-dir>/audit.key
// (created 0600 on first start), so auditors' trust-on-first-use pins
// survive restarts; without it the key is ephemeral per process.
//
// With -topology (a cluster topology file — see internal/cluster) and
// -self (this process's backend name in it), the process joins a serve
// cluster as a replica host: a follower manager polls the other
// backends, creates local read-replica datasets for every dataset the
// consistent-hash ring places here, and tails each primary's
// replication stream (its WAL served as verbatim frames over
// /v1/datasets/{name}/wal). Follower datasets answer reads
// bit-identically to the primary at equal generation (normal solver)
// and refuse writes with 421 plus the primary's address; budget is
// mirrored, never spent. Put the `ektelo-router` binary in front of
// the cluster to get placement-aware routing.
//
// SIGINT/SIGTERM shut the server down gracefully: the listener stops
// accepting, in-flight requests get -shutdown-grace to finish, then
// every dataset's batcher drains and its log is fsynced and closed.
//
// The API (see internal/serve):
//
//	GET  /healthz                      — liveness
//	GET  /v1/status                    — per-dataset cluster state
//	GET  /v1/plans                     — the Fig. 2 plan registry
//	GET  /v1/strategies                — measurement strategies
//	GET  /v1/datasets                  — dataset summaries
//	GET  /v1/datasets/{name}/wal       — replication-stream tail
//	GET  /v1/datasets/{name}/audit/checkpoint   — signed ledger head
//	GET  /v1/datasets/{name}/audit/proof        — charge inclusion proof
//	GET  /v1/datasets/{name}/audit/consistency  — append-only proof
//	POST /v1/datasets                  — create a synthetic dataset
//	GET  /v1/datasets/{name}           — one dataset's summary
//	GET  /v1/datasets/{name}/budget    — remaining-budget report
//	POST /v1/datasets/{name}/measure   — spend budget on a strategy
//	                                     (or a plan, with "plan")
//	POST /v1/datasets/{name}/plan      — execute a Fig. 2 registry plan
//	POST /v1/datasets/{name}/query     — answer a range workload
//
// Example session (fixed strategy, then a full DAWA plan):
//
//	ektelo-serve -state-dir /var/lib/ektelo \
//	             -preload census:piecewise:4096:1000000:7:10 &
//	curl -s localhost:8199/v1/datasets/census/budget
//	curl -s -XPOST localhost:8199/v1/datasets/census/measure \
//	     -d '{"strategy":"hb","eps":1}'
//	curl -s -XPOST localhost:8199/v1/datasets/census/plan \
//	     -d '{"plan":"DAWA","eps":1}'
//	curl -s -XPOST localhost:8199/v1/datasets/census/query \
//	     -d '{"ranges":[[0,1023],[512,2047]]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8199", "listen address")
	window := flag.Duration("window", 250*time.Microsecond, "batcher coalescing window")
	maxBatch := flag.Int("maxbatch", 64, "max client requests per answering panel")
	replicates := flag.Int("replicates", 3, "bootstrap columns for per-answer error bars (-1 disables)")
	solverName := flag.String("solver", "lsmr",
		fmt.Sprintf("estimate-panel block solver %v; dataset creates may override per dataset", serve.Solvers()))
	stateDir := flag.String("state-dir", "", "persist measurement logs durably under this directory (restores on create)")
	persist := flag.String("persist", serve.PersistWAL,
		"persistence backend: wal (per-commit log records) or snapshot (legacy full rewrite)")
	fsync := flag.String("fsync", wal.PolicyAlways,
		"wal fsync policy: always (per record), interval (batched), never (OS page cache only)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "max time between wal fsyncs under -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 0, "compact the wal into a checkpoint every N records (0: default 64)")
	replRetain := flag.Int("repl-retain", 0, "replication-stream frames kept in memory before trimming (0: default 2x checkpoint cadence, -1: unlimited)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "in-flight request deadline on SIGINT/SIGTERM")
	planCache := flag.Int("plan-cache", 0, "workload-answer cache entries per dataset (0: default 256, -1: disabled)")
	topologyPath := flag.String("topology", "", "cluster topology file; enables the follower manager (requires -self)")
	self := flag.String("self", "", "this process's backend name in the -topology file")
	syncInterval := flag.Duration("sync-interval", 200*time.Millisecond, "follower discovery + tail spacing under -topology")
	var preloads preloadList
	flag.Var(&preloads, "preload", "preload dataset as name:kind:n:scale:seed:eps (repeatable)")
	flag.Parse()

	if !slices.Contains(serve.Solvers(), *solverName) {
		log.Fatalf("unknown -solver %q (have %v)", *solverName, serve.Solvers())
	}
	if *persist != serve.PersistWAL && *persist != serve.PersistSnapshot {
		log.Fatalf("unknown -persist %q (have %q, %q)", *persist, serve.PersistWAL, serve.PersistSnapshot)
	}
	if !wal.ValidPolicy(*fsync) {
		log.Fatalf("unknown -fsync %q (have %q, %q, %q)", *fsync, wal.PolicyAlways, wal.PolicyInterval, wal.PolicyNever)
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			log.Fatalf("state dir: %v", err)
		}
	}
	s := serve.New(serve.Config{
		BatchWindow:     *window,
		MaxBatch:        *maxBatch,
		Replicates:      *replicates,
		Solver:          *solverName,
		CacheSize:       *planCache,
		StateDir:        *stateDir,
		Persist:         *persist,
		Fsync:           *fsync,
		FsyncInterval:   *fsyncInterval,
		CheckpointEvery: *checkpointEvery,
		ReplRetain:      *replRetain,
	})

	for _, p := range preloads {
		d, err := s.CreateDataset(p.name, p.kind, p.n, p.scale, p.seed, p.eps)
		if err != nil {
			log.Fatalf("preload %s: %v", p.name, err)
		}
		sum := d.Summary()
		log.Printf("preloaded dataset %q: domain %d, ε_total %g", sum.Name, sum.Domain, sum.EpsTotal)
	}

	// Under -topology this process is a cluster member: the follower
	// manager keeps local read replicas of every dataset the ring
	// assigns here, tailing the primaries' replication streams.
	var mgr *cluster.Manager
	if (*topologyPath == "") != (*self == "") {
		log.Fatalf("-topology and -self go together")
	}
	if *topologyPath != "" {
		topo, err := cluster.LoadTopology(*topologyPath)
		if err != nil {
			log.Fatal(err)
		}
		mgr, err = cluster.NewManager(s, topo, *self, cluster.Options{ProbeInterval: *syncInterval})
		if err != nil {
			log.Fatal(err)
		}
		mgr.Start()
		log.Printf("cluster member %q: following ring placements from %s", *self, *topologyPath)
	}

	// The header/read timeouts bound slow or stalled clients; the write
	// timeout is generous because a cold panel solve on a large domain
	// legitimately takes seconds.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("ektelo-serve listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		s.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain
	log.Printf("ektelo-serve shutting down (grace %v)", *shutdownGrace)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	// With the listener quiet, stop following, then drain every
	// dataset's batcher and fsync and close its write-ahead log.
	if mgr != nil {
		mgr.Close()
	}
	s.Close()
	log.Printf("ektelo-serve stopped")
}

// preload is one -preload flag value.
type preload struct {
	name, kind string
	n          int
	scale, eps float64
	seed       uint64
}

type preloadList []preload

func (l *preloadList) String() string {
	parts := make([]string, len(*l))
	for i, p := range *l {
		parts[i] = p.name
	}
	return strings.Join(parts, ",")
}

func (l *preloadList) Set(v string) error {
	f := strings.Split(v, ":")
	if len(f) != 6 {
		return fmt.Errorf("want name:kind:n:scale:seed:eps, got %q", v)
	}
	n, err := strconv.Atoi(f[2])
	if err != nil {
		return fmt.Errorf("bad n %q", f[2])
	}
	scale, err := strconv.ParseFloat(f[3], 64)
	if err != nil {
		return fmt.Errorf("bad scale %q", f[3])
	}
	seed, err := strconv.ParseUint(f[4], 10, 64)
	if err != nil {
		return fmt.Errorf("bad seed %q", f[4])
	}
	eps, err := strconv.ParseFloat(f[5], 64)
	if err != nil {
		return fmt.Errorf("bad eps %q", f[5])
	}
	*l = append(*l, preload{name: f[0], kind: f[1], n: n, scale: scale, seed: seed, eps: eps})
	return nil
}
