// Reduction: the paper's §8 workload-based partition selection — a
// lossless, budget-free domain reduction computed purely from the
// workload (Algorithm 4), shown here improving both the runtime and
// the error of downstream plans (the paper's Table 6).
//
// Run: go run ./examples/reduction
package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core/partition"
	"repro/internal/core/plans"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/noise"
	"repro/internal/workload"
)

func main() {
	const (
		n   = 8192
		eps = 0.5
	)
	x := dataset.Synthetic1D("piecewise", n, 100000, 3)
	w := workload.RandomSmallRange(n, 400, 16, noise.NewRand(4))
	truth := mat.Mul(w, x)

	// The reduction is public: it only reads the workload. Cells that
	// every query treats identically merge into one group.
	start := time.Now()
	p := partition.WorkloadBased(w, noise.NewRand(5), 2)
	fmt.Printf("workload-based reduction: %d cells -> %d groups (computed in %s)\n\n",
		n, p.K, time.Since(start).Round(time.Microsecond))

	wReduced := p.ReduceWorkload(w)

	for _, alg := range []string{"Identity", "HB", "DAWA"} {
		// Without reduction.
		_, h := kernel.InitVector(x, eps, noise.NewRand(10))
		t0 := time.Now()
		xhat := run(alg, h, eps)
		ans := mat.Mul(w, xhat)
		dOrig := time.Since(t0)
		eOrig := rms(ans, truth)

		// With reduction: a 1-stable kernel transform, then the same plan
		// on the reduced vector, answering through the reduced workload.
		_, h2 := kernel.InitVector(x, eps, noise.NewRand(11))
		t0 = time.Now()
		hr := h2.ReduceByPartition(p.Matrix())
		xr := run(alg, hr, eps)
		ansR := mat.Mul(wReduced, xr)
		dRed := time.Since(t0)
		eRed := rms(ansR, truth)

		fmt.Printf("  %-9s error %9.1f -> %9.1f (%.2fx)   runtime %8s -> %8s\n",
			alg, eOrig, eRed, eOrig/eRed, dOrig.Round(time.Microsecond), dRed.Round(time.Microsecond))
	}
	fmt.Println("\n(the reduction is lossless for the workload — Wx = W'x' —")
	fmt.Println("so accuracy can only improve: Theorem 8.4)")
}

func run(alg string, h *kernel.Handle, eps float64) []float64 {
	var xhat []float64
	var err error
	switch alg {
	case "Identity":
		xhat, err = plans.Identity(h, eps)
	case "HB":
		xhat, err = plans.HB(h, eps)
	case "DAWA":
		xhat, err = plans.DAWA(h, eps, plans.DAWAConfig{})
	}
	if err != nil {
		panic(err)
	}
	return xhat
}

func rms(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
