// Spatial: the 2-D algorithms — QuadTree (plan #10), UniformGrid
// (plan #11) and AdaptiveGrid (plan #12) — on clustered spatial data,
// answering random rectangle queries. AdaptiveGrid's second level
// parallel-composes over the level-1 cells, so refining dense regions
// costs no extra budget.
//
// Run: go run ./examples/spatial
package main

import (
	"fmt"
	"math"

	"repro/internal/core/plans"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/noise"
	"repro/internal/vec"
	"repro/internal/workload"
)

func main() {
	const (
		side = 64
		eps  = 0.1
	)
	x := dataset.Grid2D(side, side, 20000, 7)
	total := vec.Sum(x)
	w := workload.RandomRange2D(side, side, 500, noise.NewRand(8))
	fmt.Printf("%dx%d grid, %.0f records, 500 random rectangle queries, ε=%.2f\n\n", side, side, total, eps)

	run := func(name string, f func(h *kernel.Handle) ([]float64, error)) {
		var errSum float64
		const trials = 3
		for s := uint64(0); s < trials; s++ {
			_, h := kernel.InitVector(x, eps, noise.NewRand(100+s))
			xhat, err := f(h)
			if err != nil {
				panic(err)
			}
			errSum += rms(mat.Mul(w, xhat), mat.Mul(w, x))
		}
		fmt.Printf("  %-13s per-query RMS error %8.1f\n", name, errSum/trials)
	}

	run("Identity", func(h *kernel.Handle) ([]float64, error) {
		return plans.Identity(h, eps)
	})
	run("QuadTree", func(h *kernel.Handle) ([]float64, error) {
		return plans.QuadTree(h, side, side, eps)
	})
	run("UniformGrid", func(h *kernel.Handle) ([]float64, error) {
		return plans.UniformGrid(h, side, side, total, eps)
	})
	run("AdaptiveGrid", func(h *kernel.Handle) ([]float64, error) {
		return plans.AdaptiveGrid(h, side, side, eps, plans.AdaptiveGridConfig{NEst: total})
	})
	fmt.Println("\n(the grids exploit sparsity: whole empty regions are measured")
	fmt.Println("as single cells, and AdaptiveGrid refines only where the")
	fmt.Println("level-1 counts indicate mass)")
}

func rms(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
