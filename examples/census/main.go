// Census: the paper's §9.2 case study — answering Census-style
// tabulation workloads over a 5-attribute domain with the striped plans
// and the PrivBayes baselines, reporting scaled per-query L2 error.
//
// This runs a reduced-income-resolution version of the paper's Table 5
// in a few seconds; `ektelo-bench -exp table5 -full` runs the full
// 1.4M-cell domain.
//
// Run: go run ./examples/census
package main

import (
	"fmt"
	"math"

	"repro/internal/core/plans"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/noise"
	"repro/internal/solver"
	"repro/internal/workload"
)

func main() {
	const eps = 1.0

	// A coarsened census domain: 500 income buckets × 5 × 7 × 4 × 2.
	schema := dataset.Schema{
		{Name: "income", Size: 500},
		{Name: "age", Size: 5},
		{Name: "status", Size: 7},
		{Name: "race", Size: 4},
		{Name: "gender", Size: 2},
	}
	full := dataset.Census(3)
	tbl := dataset.New(schema)
	for i := 0; i < full.NumRows(); i++ {
		row := full.Row(i)
		row[0] /= 10 // 5000 -> 500 buckets
		tbl.Append(row...)
	}
	x := tbl.Vectorize()
	shape := schema.Sizes()
	scale := float64(tbl.NumRows())
	fmt.Printf("domain: %d cells, %d records\n\n", len(x), tbl.NumRows())

	// The workload suggested by Census staff: income prefixes broken down
	// by every combination of the demographic attributes (§9.2).
	w := workload.CensusPrefixIncome(schema)
	wr, _ := w.Dims()
	fmt.Printf("Prefix(Income) workload: %d queries (implicit Kronecker)\n\n", wr)

	solverOpts := solver.Options{MaxIter: 80, Tol: 1e-7}
	run := func(name string, f func(h *kernel.Handle) ([]float64, error)) {
		_, h := kernel.InitVector(x, eps, noise.NewRand(11))
		xhat, err := f(h)
		if err != nil {
			panic(err)
		}
		err2 := l2(w, xhat, x) / scale
		fmt.Printf("  %-14s scaled per-query L2 error: %.3g\n", name, err2)
	}

	fmt.Println("algorithms (ε = 1.0):")
	run("Identity", func(h *kernel.Handle) ([]float64, error) { return plans.Identity(h, eps) })
	run("PrivBayes", func(h *kernel.Handle) ([]float64, error) {
		return plans.PrivBayes(h, eps, plans.PrivBayesConfig{Shape: shape, Solver: solverOpts})
	})
	run("PrivBayesLS", func(h *kernel.Handle) ([]float64, error) {
		return plans.PrivBayesLS(h, eps, plans.PrivBayesConfig{Shape: shape, Solver: solverOpts})
	})
	run("HB-Striped", func(h *kernel.Handle) ([]float64, error) {
		return plans.HBStriped(h, shape, 0, eps, solverOpts)
	})
	run("DAWA-Striped", func(h *kernel.Handle) ([]float64, error) {
		return plans.DAWAStriped(h, shape, 0, eps, plans.DAWAStripedConfig{Solver: solverOpts})
	})
}

func l2(w mat.Matrix, xhat, x []float64) float64 {
	a := mat.Mul(w, xhat)
	b := mat.Mul(w, x)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
