// Quickstart: the paper's running example (§2.1, Algorithm 1) — a
// differentially private estimate of the empirical CDF of Salary
// (income) for males in their thirties, written as an EKTELO plan.
//
// The plan: Where → Select → Vectorize → AHPpartition (ε/2) →
// V-ReduceByPartition → Identity select → Vector Laplace (ε/2) → NNLS →
// Prefix workload.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core/inference"
	"repro/internal/core/partition"
	"repro/internal/core/selection"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/noise"
	"repro/internal/solver"
)

func main() {
	const eps = 1.0

	// 1. Protected(source): the kernel takes custody of the table; the
	// plan sees only an opaque handle.
	table := dataset.Census(42)
	k, root := kernel.InitTable(table, eps, noise.NewRand(7))

	// 2-3. Table transforms (Private operators, no budget): filter to
	// males in their thirties (age bucket 1 covers 20-39 in the 5-bucket
	// discretization; gender 0 is male) and project onto income.
	filtered := root.Where(dataset.Predicate{
		dataset.Eq("gender", 0),
		dataset.Eq("age", 1),
	})
	income := filtered.Select("income")

	// 4. T-Vectorize: one cell per income bucket.
	x := income.Vectorize()
	n := x.Domain()

	// 5. AHPpartition spends ε/2 on a noisy copy of the histogram to find
	// groups of near-uniform buckets (Private→Public).
	noisy, _, err := x.VectorLaplace(selection.Identity(n), eps/2)
	if err != nil {
		panic(err)
	}
	p := partition.AHPCluster(noisy, 0.35, eps/2)
	fmt.Printf("AHP partition: %d income buckets -> %d groups\n", n, p.K)

	// 6. V-ReduceByPartition applies the grouping inside the kernel.
	reduced := x.ReduceByPartition(p.Matrix())

	// 7-8. Identity selection on the reduced vector, measured with the
	// remaining ε/2 (sensitivity is calibrated automatically).
	strategy := selection.Identity(p.K)
	y, scale, err := reduced.VectorLaplace(strategy, eps/2)
	if err != nil {
		panic(err)
	}

	// 9. NNLS inference maps the noisy group counts back onto the full
	// income domain with a non-negativity constraint.
	ms := inference.NewMeasurements(n)
	ms.Add(reduced.MapTo(x, strategy), y, scale)
	xhat := ms.NNLS(solver.Options{MaxIter: 600})

	// 10. The Prefix workload turns the histogram estimate into a CDF.
	cdf := mat.Mul(mat.Prefix(n), xhat)

	// For the demo we also hold the raw table, so we can show the truth
	// (a real deployment could not).
	trueHist := table.Where(dataset.Predicate{
		dataset.Eq("gender", 0),
		dataset.Eq("age", 1),
	}).Select("income").Vectorize()
	truth := mat.Mul(mat.Prefix(n), trueHist)
	fmt.Printf("privacy budget consumed: %.3f of %.3f\n", k.Consumed(), eps)
	fmt.Println("income CDF (selected quantile buckets), private vs true:")
	for _, q := range []int{n / 10, n / 4, n / 2, 3 * n / 4, n - 1} {
		fmt.Printf("  bucket %5d (income < $%7d): %8.0f  vs %8.0f\n",
			q, (q+1)*150, cdf[q], truth[q])
	}
}
