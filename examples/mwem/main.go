// MWEM: the paper's §9.1 recombination study — standard MWEM against the
// three variants built by swapping its selection and inference operators
// (augmented H2 selection; NNLS with known total), on DPBench-style 1-D
// data with a random range workload (the paper's Table 4 setting).
//
// Run: go run ./examples/mwem
package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core/plans"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/noise"
	"repro/internal/vec"
	"repro/internal/workload"
)

func main() {
	const (
		n     = 1024
		eps   = 0.1
		scale = 100000
	)
	x := dataset.Synthetic1D("piecewise", n, scale, 5)
	total := vec.Sum(x)
	w := workload.RandomRange(n, 300, noise.NewRand(6))
	fmt.Printf("domain %d, %.0f records, 300 random range queries, ε=%.2f\n\n", n, total, eps)

	variants := []struct {
		name string
		cfg  plans.MWEMConfig
	}{
		{"(a) MWEM (standard)", plans.MWEMConfig{Rounds: 10, Total: total}},
		{"(b) + H2 augmented selection", plans.MWEMConfig{Rounds: 10, Total: total, AugmentH2: true}},
		{"(c) + NNLS inference", plans.MWEMConfig{Rounds: 10, Total: total, UseNNLS: true}},
		{"(d) + both", plans.MWEMConfig{Rounds: 10, Total: total, AugmentH2: true, UseNNLS: true}},
	}

	var baseErr float64
	for i, v := range variants {
		var errSum float64
		start := time.Now()
		const trials = 3
		for t := uint64(0); t < trials; t++ {
			_, h := kernel.InitVector(x, eps, noise.NewRand(100+t))
			xhat, err := plans.MWEM(h, w, eps, v.cfg)
			if err != nil {
				panic(err)
			}
			errSum += l2(w, xhat, x)
		}
		meanErr := errSum / trials
		if i == 0 {
			baseErr = meanErr
		}
		fmt.Printf("  %-32s error %8.1f  (%.2fx vs standard)  %s\n",
			v.name, meanErr, baseErr/meanErr, time.Since(start).Round(time.Millisecond))
	}
}

func l2(w mat.Matrix, xhat, x []float64) float64 {
	a := mat.Mul(w, xhat)
	b := mat.Mul(w, x)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
