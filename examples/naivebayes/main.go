// NaiveBayes: the paper's §9.3 case study — training a differentially
// private Naive Bayes classifier on credit-default-like data and
// comparing the AUC of the EKTELO plans against the non-private
// classifier and the majority baseline across privacy budgets (the
// paper's Figure 3).
//
// Run: go run ./examples/naivebayes
package main

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/nbayes"
)

func main() {
	tbl := dataset.CreditDefault(9)
	fmt.Printf("credit data: %d rows, predictor domain %d\n\n", tbl.NumRows(), 7*4*11*56)

	classifiers := []struct {
		name string
		plan nbayes.Plan
	}{
		{"Identity", nbayes.PlanIdentity},
		{"Workload", nbayes.PlanWorkload},
		{"WorkloadLS", nbayes.PlanWorkloadLS},
		{"SelectLS", nbayes.PlanSelectLS},
	}

	clean := median(nbayes.Evaluate(tbl, nil, 0, 5, 1, 1))
	fmt.Printf("%-12s %8s %8s %8s\n", "classifier", "eps=1e-3", "eps=1e-2", "eps=1e-1")
	fmt.Printf("%-12s %8.3f %8.3f %8.3f   (reference)\n", "Unperturbed", clean, clean, clean)
	fmt.Printf("%-12s %8.3f %8.3f %8.3f   (reference)\n", "Majority", 0.5, 0.5, 0.5)
	for _, c := range classifiers {
		fmt.Printf("%-12s", c.name)
		for _, eps := range []float64{1e-3, 1e-2, 1e-1} {
			auc := median(nbayes.Evaluate(tbl, c.plan, eps, 5, 1, uint64(eps*1e6)+3))
			fmt.Printf(" %8.3f", auc)
		}
		fmt.Println()
	}
	fmt.Println("\n(AUC medians over 5-fold cross validation; the private")
	fmt.Println("classifiers approach the unperturbed AUC as ε grows and")
	fmt.Println("collapse towards the 0.5 majority baseline as ε shrinks.)")
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
